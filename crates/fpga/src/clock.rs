//! Analytic clock-period model.
//!
//! After place-and-route the paper observes that designs with more registers and more
//! complex storage control (partial replacement, register/RAM multiplexing) achieve a
//! slightly worse clock period — on average about 7% worse for the CPA-RA versions —
//! and that this degradation partly offsets the cycle-count gains.  This module models
//! that effect with an explicit linear formula so the wall-clock comparison of the
//! Table 1 reproduction exercises the same trade-off.

use serde::{Deserialize, Serialize};
use srra_core::{ReplacementMode, ReplacementPlan};

/// Linear clock-period estimator.
///
/// `period = base + α·registers + γ·partially_replaced_refs + δ·ram_arrays`, in
/// nanoseconds.  The default coefficients are calibrated so that a 32-register design
/// with a couple of partially replaced references degrades the clock by a few percent,
/// matching the order of magnitude reported in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Achievable period of the bare datapath in nanoseconds.
    pub base_period_ns: f64,
    /// Added period per allocated register (wider result/operand multiplexers).
    pub per_register_ns: f64,
    /// Added period per partially replaced reference (rotation + select control).
    pub per_partial_ref_ns: f64,
    /// Added period per array still resident in RAM (address generation and port
    /// multiplexing).
    pub per_ram_array_ns: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        Self {
            base_period_ns: 40.0,
            per_register_ns: 0.05,
            per_partial_ref_ns: 1.2,
            per_ram_array_ns: 0.4,
        }
    }
}

impl ClockModel {
    /// Estimates the clock period (ns) of a design implementing the given plan.
    pub fn period_ns(&self, plan: &ReplacementPlan) -> f64 {
        let registers = plan.total_registers() as f64;
        let partial = plan
            .refs()
            .iter()
            .filter(|r| r.mode == ReplacementMode::Partial)
            .count() as f64;
        let ram_arrays = plan
            .refs()
            .iter()
            .filter(|r| r.steady_miss > 0.0)
            .map(|r| r.array_name.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .len() as f64;
        self.base_period_ns
            + self.per_register_ns * registers
            + self.per_partial_ref_ns * partial
            + self.per_ram_array_ns * ram_arrays
    }

    /// Clock frequency in MHz corresponding to [`ClockModel::period_ns`].
    pub fn frequency_mhz(&self, plan: &ReplacementPlan) -> f64 {
        1_000.0 / self.period_ns(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_core::{allocate, AllocatorKind};
    use srra_ir::examples::paper_example;
    use srra_reuse::ReuseAnalysis;

    fn plan(kind: AllocatorKind, budget: u64) -> ReplacementPlan {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        ReplacementPlan::new(&kernel, &analysis, &allocation)
    }

    #[test]
    fn more_registers_and_partial_control_degrade_the_clock() {
        let model = ClockModel::default();
        let base = model.period_ns(&plan(AllocatorKind::NoReplacement, 0));
        let fr = model.period_ns(&plan(AllocatorKind::FullReuse, 64));
        let cpa = model.period_ns(&plan(AllocatorKind::CriticalPathAware, 64));
        assert!(fr > base);
        // CPA-RA uses more registers and two partially replaced references here, so its
        // clock is the slowest of the three.
        assert!(cpa > fr);
        // The degradation stays in the "few percent" range the paper reports.
        assert!(cpa / base < 1.25);
    }

    #[test]
    fn frequency_is_the_inverse_of_the_period() {
        let model = ClockModel::default();
        let p = plan(AllocatorKind::FullReuse, 64);
        let period = model.period_ns(&p);
        let freq = model.frequency_mhz(&p);
        assert!((freq - 1_000.0 / period).abs() < 1e-9);
    }

    #[test]
    fn coefficients_are_configurable() {
        let p = plan(AllocatorKind::FullReuse, 64);
        let flat = ClockModel {
            per_register_ns: 0.0,
            per_partial_ref_ns: 0.0,
            per_ram_array_ns: 0.0,
            ..ClockModel::default()
        };
        assert!((flat.period_ns(&p) - flat.base_period_ns).abs() < 1e-12);
    }
}
