//! Failover integration tests: a replicated two-node cluster keeps answering
//! — byte-identically — after one node is killed mid-run, and an
//! unreplicated cluster reports unavailability instead of wrong answers.

use srra_cluster::{ClusterClient, ClusterConfig, ClusterError};
use srra_serve::{Client, PointOutcome, QueryPoint, Server, ServerConfig};

/// A 24-point workload spanning two kernels and three algorithms.
fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat"] {
        for algo in ["fr", "pr", "cpa"] {
            for budget in [8, 16, 32, 64] {
                points.push(QueryPoint::new(kernel, algo, budget));
            }
        }
    }
    points
}

fn canonicals(points: &[QueryPoint]) -> Vec<String> {
    points
        .iter()
        .map(|point| srra_serve::canonical_for(point).expect("workload resolves"))
        .collect()
}

/// One JSONL line per record, for byte-level comparisons.
fn json_lines(records: &[srra_explore::PointRecord]) -> Vec<String> {
    records
        .iter()
        .map(|record| {
            let mut line = String::new();
            record.write_json_line(&mut line);
            line
        })
        .collect()
}

/// Starts `count` in-process serve nodes under `dir`; returns their
/// addresses and join handles.
fn start_nodes(
    dir: &std::path::Path,
    count: usize,
) -> (
    Vec<String>,
    Vec<std::thread::JoinHandle<srra_serve::ServerReport>>,
) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for index in 0..count {
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::ephemeral(dir.join(format!("node-{index}")))
        })
        .expect("node binds");
        addrs.push(server.local_addr().to_string());
        handles.push(std::thread::spawn(move || server.run().expect("node runs")));
    }
    (addrs, handles)
}

#[test]
fn replicated_cluster_answers_byte_identically_after_a_node_kill() {
    let dir = std::env::temp_dir().join(format!("srra-cluster-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);

    let mut cluster = ClusterClient::connect(&ClusterConfig::new(addrs.clone()).with_replicas(2))
        .expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);

    // Cold pass: every point evaluated exactly once somewhere, every fresh
    // record teed to the other node.
    let cold = cluster.explore(&points).expect("cold explore");
    assert_eq!(cold.evaluated, points.len() as u64);
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.replicated, points.len() as u64);
    let originals: Vec<srra_explore::PointRecord> = cold
        .outcomes
        .iter()
        .map(|outcome| match outcome {
            PointOutcome::Answered { record, .. } => record.clone(),
            PointOutcome::Failed { error } => panic!("cold outcome failed: {error}"),
        })
        .collect();
    let original_lines = json_lines(&originals);

    // Baseline read with both nodes up.
    let warm = cluster.mget(&keys).expect("warm mget");
    assert!(warm.iter().all(Option::is_some));

    // Kill node 0 mid-run (graceful shutdown; the cluster client still holds
    // a keep-alive connection to it and only learns on its next call).
    Client::new(addrs[0].clone()).shutdown().expect("shutdown");
    handles.remove(0).join().expect("server thread");

    // Reads fail over to the surviving replica and stay byte-identical.
    let failed_over = cluster.mget(&keys).expect("failover mget");
    let survived: Vec<srra_explore::PointRecord> = failed_over
        .into_iter()
        .map(|record| record.expect("replica answers every key"))
        .collect();
    assert_eq!(
        json_lines(&survived),
        original_lines,
        "byte-identical records"
    );

    // A warm explore is also answered entirely by the survivor: no point is
    // re-evaluated, because the tee put a copy of every record there.
    let warm_explore = cluster.explore(&points).expect("failover explore");
    assert_eq!(warm_explore.evaluated, 0);
    assert_eq!(warm_explore.hits, points.len() as u64);

    let stats = cluster.stats();
    assert_eq!(stats.nodes_up(), 1);
    assert_eq!(stats.total_records(), points.len());

    assert_eq!(cluster.shutdown_all(), 1);
    for handle in handles {
        handle.join().expect("server thread");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");
}

#[test]
fn failover_reads_keep_their_trace_id_on_the_replica() {
    let dir = std::env::temp_dir().join(format!("srra-cluster-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);

    let mut cluster = ClusterClient::connect(&ClusterConfig::new(addrs.clone()).with_replicas(2))
        .expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    cluster.explore(&points).expect("cold explore");

    // Kill node 0, then read the whole workload under one trace id: node
    // 0's share fails over to the surviving replica, and the replayed
    // sub-batches must still carry the id.
    Client::new(addrs[0].clone()).shutdown().expect("shutdown");
    handles.remove(0).join().expect("server thread");
    cluster
        .set_trace(Some("failover-sweep.1"))
        .expect("valid id");
    let records = cluster.mget(&keys).expect("failover mget");
    assert!(records.iter().all(Option::is_some));
    cluster.set_trace(None).expect("clearing is fine");

    // The survivor's flight recorder holds the traced failover reads; the
    // dead node reports unscraped instead of failing the call.
    let scraped = cluster.trace("failover-sweep.1");
    assert_eq!(scraped.nodes_up(), 1, "only the survivor answers");
    assert!(
        scraped
            .nodes
            .iter()
            .any(|(addr, spans)| *addr == addrs[0] && spans.is_none()),
        "{:?}",
        scraped.nodes
    );
    let roots: Vec<_> = scraped
        .merged
        .iter()
        .filter(|span| span.parent_id == 0)
        .collect();
    assert!(
        !roots.is_empty(),
        "the survivor recorded the failover reads"
    );
    assert!(
        roots
            .iter()
            .all(|span| span.name == "mget" && span.trace_id == "failover-sweep.1"),
        "{roots:?}"
    );

    // Malformed ids are rejected before any traffic.
    assert!(cluster.set_trace(Some("has space")).is_err());

    assert_eq!(cluster.shutdown_all(), 1);
    for handle in handles {
        handle.join().expect("server thread");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");
}

#[test]
fn unreplicated_cluster_reports_unavailable_keys_instead_of_guessing() {
    let dir = std::env::temp_dir().join(format!("srra-cluster-unavail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);

    let mut cluster =
        ClusterClient::connect(&ClusterConfig::new(addrs.clone())).expect("cluster connects");
    assert_eq!(cluster.replicas(), 1);
    let points = workload();
    let keys = canonicals(&points);
    cluster.explore(&points).expect("cold explore");

    // Pick a canonical owned by node 0, then kill node 0.
    let victim = addrs[0].clone();
    let orphaned = keys
        .iter()
        .find(|canonical| cluster.ring().node_for_canonical(canonical) == victim)
        .expect("the ring splits 24 keys over both nodes")
        .clone();
    let kept = keys
        .iter()
        .find(|canonical| cluster.ring().node_for_canonical(canonical) != victim)
        .expect("the ring splits 24 keys over both nodes")
        .clone();
    Client::new(victim).shutdown().expect("shutdown");
    handles.remove(0).join().expect("server thread");

    // The orphaned key has no replica successor: unavailable, not a miss.
    match cluster.get(&orphaned) {
        Err(ClusterError::Unavailable { .. }) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
    // Keys owned by the survivor keep answering.
    assert!(cluster.get(&kept).expect("survivor answers").is_some());

    assert_eq!(cluster.shutdown_all(), 1);
    for handle in handles {
        handle.join().expect("server thread");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");
}
