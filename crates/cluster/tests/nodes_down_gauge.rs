//! The `cluster_nodes_down` gauge tracks health transitions without leaking:
//! one increment per node entering a back-off window, one decrement when it
//! recovers — including across `ping_all`'s deliberate dial-through, which
//! forgets the window and re-marks the node from the probe's outcome.
//!
//! Lives in its own test binary: the gauge sits in the process-global
//! registry, and sibling tests killing nodes concurrently would race exact
//! assertions.

use srra_cluster::{ClusterClient, ClusterConfig};
use srra_obs::Registry;
use srra_serve::{Server, ServerConfig};

fn nodes_down() -> i64 {
    Registry::global()
        .snapshot()
        .gauge("cluster_nodes_down")
        .unwrap_or(0)
}

#[test]
fn nodes_down_gauge_rises_on_mark_down_and_clears_on_recovery() {
    let dir = std::env::temp_dir().join(format!("srra-cluster-gauge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let up = Server::bind(&ServerConfig::ephemeral(dir.join("up"))).expect("bind up node");
    let up_addr = up.local_addr().to_string();
    let up_handle = std::thread::spawn(move || up.run().expect("up node runs"));

    // Reserve an address that refuses connections: bind an ephemeral port,
    // remember it, drop the listener.  The dead node revives on it later.
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    let dead_addr = reserved.local_addr().expect("reserved addr").to_string();
    drop(reserved);

    assert_eq!(nodes_down(), 0, "fresh process: nothing is down");

    // Connect probes every node: the dead one enters its back-off window.
    let mut cluster = ClusterClient::connect(
        &ClusterConfig::new([up_addr.clone(), dead_addr.clone()]).with_replicas(2),
    )
    .expect("one reachable node suffices");
    assert_eq!(nodes_down(), 1, "the dead node is marked down");

    // A liveness probe dials through the window (forgetting it) and re-marks
    // the still-dead node down: the gauge must not double-count.
    let probed = cluster.ping_all();
    assert_eq!(probed.iter().filter(|(_, up)| *up).count(), 1);
    assert_eq!(
        nodes_down(),
        1,
        "forget-then-re-mark is one window, not two"
    );

    // Revive the dead address; the next probe recovers the node.
    let revived = Server::bind(&ServerConfig {
        addr: dead_addr,
        ..ServerConfig::ephemeral(dir.join("dead"))
    })
    .expect("rebind the reserved port");
    let revived_handle = std::thread::spawn(move || revived.run().expect("revived node runs"));
    let probed = cluster.ping_all();
    assert!(probed.iter().all(|(_, up)| *up), "{probed:?}");
    assert_eq!(nodes_down(), 0, "recovery clears the gauge");

    cluster.shutdown_all();
    up_handle.join().expect("up node thread");
    revived_handle.join().expect("revived node thread");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
