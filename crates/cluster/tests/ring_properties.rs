//! Property tests for the consistent-hash ring: deterministic placement,
//! order-insensitivity, balance under virtual nodes, and minimal movement
//! when a node leaves.

use proptest::prelude::*;
use srra_cluster::Ring;

/// Generated node names shaped like real `host:port` addresses.
fn node_names(count: usize, salt: u64) -> Vec<String> {
    (0..count)
        .map(|index| format!("10.{salt}.0.{index}:7{index:03}"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two independently built rings over the same configuration place every
    /// key identically — the property that lets uncoordinated clients share
    /// a cluster.
    #[test]
    fn placement_is_deterministic(
        count in 2usize..=6,
        salt in any::<u64>(),
        vnodes in 64usize..=128,
        keys in prop::collection::vec(any::<u64>(), 256),
    ) {
        let nodes = node_names(count, salt % 200);
        let a = Ring::new(nodes.clone(), vnodes).unwrap();
        let b = Ring::new(nodes.clone(), vnodes).unwrap();
        for &key in &keys {
            prop_assert_eq!(a.node_for_key(key), b.node_for_key(key));
            prop_assert_eq!(a.owners(key, 2), b.owners(key, 2));
        }
    }

    /// Placement depends on node *names*, not configuration order: reversing
    /// the node list routes every key to the same-named node.
    #[test]
    fn placement_ignores_configuration_order(
        count in 2usize..=6,
        salt in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 256),
    ) {
        let nodes = node_names(count, salt % 200);
        let mut reversed = nodes.clone();
        reversed.reverse();
        let a = Ring::new(nodes.clone(), 64).unwrap();
        let b = Ring::new(reversed, 64).unwrap();
        for &key in &keys {
            prop_assert_eq!(
                &a.nodes()[a.node_for_key(key)],
                &b.nodes()[b.node_for_key(key)]
            );
        }
    }

    /// With >= 64 virtual nodes the load is balanced: over a large random
    /// key set, the busiest node's share stays within 2x the least busy
    /// node's share.
    #[test]
    fn virtual_nodes_balance_the_key_space(
        count in 2usize..=6,
        salt in any::<u64>(),
        vnodes in 64usize..=128,
        keys in prop::collection::vec(any::<u64>(), 4096),
    ) {
        let nodes = node_names(count, salt % 200);
        let ring = Ring::new(nodes, vnodes).unwrap();
        let mut shares = vec![0usize; ring.len()];
        for &key in &keys {
            shares[ring.node_for_key(key)] += 1;
        }
        let max = *shares.iter().max().unwrap();
        let min = *shares.iter().min().unwrap();
        prop_assert!(
            max <= 2 * min,
            "unbalanced ring: shares {shares:?} with {vnodes} vnodes"
        );
    }

    /// The owner list starts with the primary owner, contains no duplicates,
    /// and is a prefix-stable chain: owners(key, r) is a prefix of
    /// owners(key, r + 1).
    #[test]
    fn owner_lists_are_distinct_prefix_stable_chains(
        count in 2usize..=6,
        salt in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 128),
    ) {
        let nodes = node_names(count, salt % 200);
        let ring = Ring::new(nodes, 64).unwrap();
        for &key in &keys {
            let all = ring.owners(key, ring.len());
            prop_assert_eq!(all.len(), ring.len());
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ring.len(), "duplicate owner");
            prop_assert_eq!(all[0], ring.node_for_key(key));
            for replicas in 1..=ring.len() {
                prop_assert_eq!(&ring.owners(key, replicas)[..], &all[..replicas]);
            }
        }
    }

    /// Consistent hashing moves only the departed node's keys: every key NOT
    /// owned by the removed node keeps its owner.
    #[test]
    fn removing_a_node_only_moves_its_own_keys(
        count in 3usize..=6,
        salt in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 512),
    ) {
        let nodes = node_names(count, salt % 200);
        let full = Ring::new(nodes.clone(), 64).unwrap();
        let removed = nodes[0].clone();
        let without = Ring::new(nodes[1..].to_vec(), 64).unwrap();
        for &key in &keys {
            let owner = &full.nodes()[full.node_for_key(key)];
            if owner != &removed {
                prop_assert_eq!(
                    owner,
                    &without.nodes()[without.node_for_key(key)],
                    "key {} moved although its owner survived", key
                );
            }
        }
    }
}
