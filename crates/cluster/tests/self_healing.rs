//! Fault-injection tests for the self-healing cluster: a TCP proxy sits
//! between the cluster client and one node and injects the failure modes a
//! real network produces — silence (blackhole), latency, and connections
//! reset mid-reply — while keeping the node's *address* stable so ring
//! placement never shifts under the test.  The tests prove the self-healing
//! claims from `docs/cluster.md`:
//!
//! 1. deadlines bound the cost of silence: a blackholed node costs a few
//!    timeouts, not a hang, and reads fail over byte-identically;
//! 2. read-repair converges a primary that restarted empty from its replica,
//!    without any operator action;
//! 3. `repair` restores every record after an empty restart, and `rebalance`
//!    re-shards the dataset onto a grown node list.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use srra_cluster::{ClusterClient, ClusterConfig, ClusterExploreReply};
use srra_explore::PointRecord;
use srra_obs::Registry;
use srra_serve::{Client, Connection, PointOutcome, QueryPoint, Server, ServerConfig};

/// The fault a [`FaultProxy`] injects.  Consulted per forwarded chunk, not
/// just at accept time, so switching the fault affects connections that are
/// already established — like a real partition would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Forward bytes both ways untouched.
    Pass,
    /// Sleep this long when a connection is accepted, then forward.
    Delay(Duration),
    /// Accept (and keep) connections but never deliver a byte in either
    /// direction: the node looks reachable and is silent — the failure mode
    /// only a deadline can bound.
    Blackhole,
    /// Deliver the request, then close the connection instead of the reply.
    ResetMidReply,
}

/// Which way a pump thread is copying.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToServer,
    ServerToClient,
}

/// A transparent TCP proxy with a switchable upstream and a switchable
/// injected fault.  The proxy's own address is what the cluster client is
/// configured with, so the upstream node can die and be replaced — even on a
/// different port — without ring placement moving.
struct FaultProxy {
    addr: String,
    upstream: Arc<Mutex<String>>,
    fault: Arc<Mutex<Fault>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    fn start(upstream: &str) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy binds");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let upstream = Arc::new(Mutex::new(upstream.to_owned()));
        let fault = Arc::new(Mutex::new(Fault::Pass));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let (upstream, fault, stop) = (upstream.clone(), fault.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let (upstream, fault, stop) =
                                (upstream.clone(), fault.clone(), stop.clone());
                            std::thread::spawn(move || serve_one(client, &upstream, &fault, &stop));
                        }
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Self {
            addr,
            upstream,
            fault,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    fn set_fault(&self, fault: Fault) {
        *self.fault.lock().unwrap() = fault;
    }

    /// Points future (and reconnecting) connections at a replacement node.
    fn set_upstream(&self, addr: &str) {
        addr.clone_into(&mut self.upstream.lock().unwrap());
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Handles one accepted connection: applies the at-accept faults (blackhole,
/// delay), dials the upstream, and pumps bytes both ways until either side
/// closes or a live fault switch cuts in.
fn serve_one(
    client: TcpStream,
    upstream: &Arc<Mutex<String>>,
    fault: &Arc<Mutex<Fault>>,
    stop: &Arc<AtomicBool>,
) {
    match *fault.lock().unwrap() {
        Fault::Blackhole => return hold_silently(&client, stop),
        Fault::Delay(delay) => std::thread::sleep(delay),
        Fault::Pass | Fault::ResetMidReply => {}
    }
    let upstream_addr = upstream.lock().unwrap().clone();
    let Ok(server) = TcpStream::connect(&upstream_addr) else {
        return;
    };
    let request_pump = {
        let from = client.try_clone().expect("clone client");
        let to = server.try_clone().expect("clone server");
        let (fault, stop) = (fault.clone(), stop.clone());
        std::thread::spawn(move || pump(from, to, Direction::ClientToServer, &fault, &stop))
    };
    pump(server, client, Direction::ServerToClient, fault, stop);
    let _ = request_pump.join();
}

/// Copies bytes one way, re-reading the injected fault before forwarding
/// each chunk.  A blackhole switch turns the connection silent in place; a
/// reset switch drops the in-flight reply and closes both sides.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    direction: Direction,
    fault: &Mutex<Fault>,
    stop: &AtomicBool,
) {
    let mut chunk = [0u8; 4096];
    loop {
        let read = match from.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(read) => read,
        };
        match *fault.lock().unwrap() {
            Fault::Blackhole => {
                hold_silently(&from, stop);
                break;
            }
            Fault::ResetMidReply if direction == Direction::ServerToClient => break,
            _ => {}
        }
        if to.write_all(&chunk[..read]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Holds a connection open, swallowing whatever arrives and answering
/// nothing, until the proxy stops or the peer gives up.
fn hold_silently(mut stream: &TcpStream, stop: &AtomicBool) {
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .ok();
    let mut sink = [0u8; 256];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

/// A 24-point workload spanning two kernels and three algorithms.
fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat"] {
        for algo in ["fr", "pr", "cpa"] {
            for budget in [8, 16, 32, 64] {
                points.push(QueryPoint::new(kernel, algo, budget));
            }
        }
    }
    points
}

fn canonicals(points: &[QueryPoint]) -> Vec<String> {
    points
        .iter()
        .map(|point| srra_serve::canonical_for(point).expect("workload resolves"))
        .collect()
}

/// One JSONL line per record, for byte-level comparisons.
fn json_lines(records: &[PointRecord]) -> Vec<String> {
    records
        .iter()
        .map(|record| {
            let mut line = String::new();
            record.write_json_line(&mut line);
            line
        })
        .collect()
}

fn records_of(reply: &ClusterExploreReply) -> Vec<PointRecord> {
    reply
        .outcomes
        .iter()
        .map(|outcome| match outcome {
            PointOutcome::Answered { record, .. } => record.clone(),
            PointOutcome::Failed { error } => panic!("cold outcome failed: {error}"),
        })
        .collect()
}

fn unwrap_all(records: Vec<Option<PointRecord>>) -> Vec<PointRecord> {
    records
        .into_iter()
        .map(|record| record.expect("every key answered"))
        .collect()
}

fn scratch(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("srra-self-healing-{label}-{}", std::process::id()))
}

/// Starts `count` in-process serve nodes under `dir`; returns their
/// addresses and join handles.
fn start_nodes(
    dir: &std::path::Path,
    count: usize,
) -> (
    Vec<String>,
    Vec<std::thread::JoinHandle<srra_serve::ServerReport>>,
) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for index in 0..count {
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::ephemeral(dir.join(format!("node-{index}")))
        })
        .expect("node binds");
        addrs.push(server.local_addr().to_string());
        handles.push(std::thread::spawn(move || server.run().expect("node runs")));
    }
    (addrs, handles)
}

/// Starts a replacement node with an *empty* cache directory, standing in
/// for a machine that came back after losing its disk.
fn start_empty_node(
    dir: &std::path::Path,
) -> (String, std::thread::JoinHandle<srra_serve::ServerReport>) {
    let server = Server::bind(&ServerConfig {
        shards: 2,
        workers: 2,
        ..ServerConfig::ephemeral(dir.to_path_buf())
    })
    .expect("reborn node binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("reborn node runs"));
    (addr, handle)
}

/// Silence costs a bounded number of deadlines, never a hang: with one node
/// blackholed, a replicated read fails over within a few timeouts and stays
/// byte-identical.  Resets mid-reply and sub-deadline latency are absorbed
/// the same way, and `ping_all` revives the node through its back-off.
#[test]
fn deadlines_bound_failover_and_reads_survive_injected_faults() {
    let dir = scratch("faults");
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);
    let proxy = FaultProxy::start(&addrs[0]);

    let timeout = Duration::from_millis(200);
    let mut cluster = ClusterClient::connect(
        &ClusterConfig::new(vec![proxy.addr.clone(), addrs[1].clone()])
            .with_replicas(2)
            .with_timeout(Some(timeout)),
    )
    .expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    let cold = cluster.explore(&points).expect("cold explore");
    assert_eq!(cold.evaluated, points.len() as u64);
    let original_lines = json_lines(&records_of(&cold));

    // Node 0 turns silent.  The read must answer from the replica within a
    // few deadlines — unbounded blocking here is exactly the bug deadlines
    // exist to prevent — and the timeout counter must record the silence.
    let timeouts = Registry::global().counter("cluster_timeouts_total");
    let timeouts_before = timeouts.get();
    proxy.set_fault(Fault::Blackhole);
    let started = Instant::now();
    let silent = cluster.mget(&keys).expect("blackhole mget");
    let elapsed = started.elapsed();
    assert_eq!(json_lines(&unwrap_all(silent)), original_lines);
    assert!(
        elapsed < timeout * 10,
        "failover under blackhole took {elapsed:?}, expected a few deadlines"
    );
    assert!(
        timeouts.get() > timeouts_before,
        "silence counted as timeout"
    );

    // The node "recovers"; ping_all probes through the open back-off window
    // instead of trusting remembered down-state.
    proxy.set_fault(Fault::Pass);
    assert!(cluster.ping_all().iter().all(|(_, up)| *up));

    // Reset mid-reply: requests land, replies never do.  The stale-retry
    // inside the connection sees EOF twice, the cluster fails over.
    proxy.set_fault(Fault::ResetMidReply);
    let reset = cluster.mget(&keys).expect("reset mget");
    assert_eq!(json_lines(&unwrap_all(reset)), original_lines);

    // Latency under the deadline is absorbed, not failed over.
    proxy.set_fault(Fault::Delay(Duration::from_millis(25)));
    assert!(cluster.ping_all().iter().all(|(_, up)| *up));
    let delayed = cluster.mget(&keys).expect("delayed mget");
    assert_eq!(json_lines(&unwrap_all(delayed)), original_lines);

    proxy.set_fault(Fault::Pass);
    assert_eq!(cluster.shutdown_all(), 2);
    for handle in handles.drain(..) {
        handle.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A primary that restarted empty is reconverged by ordinary reads: the
/// replica answers, the records are teed back to the primary, and the
/// primary's copies are byte-identical to the originals.
#[test]
fn read_repair_reconverges_a_primary_that_restarted_empty() {
    let dir = scratch("read-repair");
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);
    let proxy = FaultProxy::start(&addrs[0]);

    let mut cluster = ClusterClient::connect(
        &ClusterConfig::new(vec![proxy.addr.clone(), addrs[1].clone()])
            .with_replicas(2)
            .with_timeout(Some(Duration::from_millis(500))),
    )
    .expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    let cold = cluster.explore(&points).expect("cold explore");
    let original_lines = json_lines(&records_of(&cold));

    // Node 0 dies and an empty replacement appears behind the same proxy
    // address: placement is unchanged, the primary's data is gone.
    Client::new(addrs[0].clone())
        .shutdown()
        .expect("shutdown node 0");
    handles.remove(0).join().expect("node 0 thread");
    let (reborn_addr, reborn_handle) = start_empty_node(&dir.join("node-0-reborn"));
    handles.push(reborn_handle);
    proxy.set_upstream(&reborn_addr);

    // One read pass heals: misses on the empty primary are retried against
    // the replica, answered, and teed back.
    let repairs = Registry::global().counter("cluster_read_repairs_total");
    let repairs_before = repairs.get();
    let healed = cluster.mget(&keys).expect("healing mget");
    assert_eq!(json_lines(&unwrap_all(healed)), original_lines);
    assert!(
        repairs.get() > repairs_before,
        "read-repair stored records on the reborn primary"
    );

    // The reborn node's copies are byte-identical to the originals.
    let mut direct = Connection::connect(&reborn_addr).expect("direct dial");
    let held = direct.mget(&keys).expect("direct mget");
    let mut held_count = 0usize;
    for (index, record) in held.iter().enumerate() {
        if let Some(record) = record {
            held_count += 1;
            let mut line = String::new();
            record.write_json_line(&mut line);
            assert_eq!(line, original_lines[index], "repaired copy diverged");
        }
    }
    assert!(held_count > 0, "the reborn primary holds repaired records");

    // And the next read is served without further repair traffic failing.
    let again = cluster.mget(&keys).expect("post-heal mget");
    assert_eq!(json_lines(&unwrap_all(again)), original_lines);

    assert_eq!(cluster.shutdown_all(), 2);
    for handle in handles.drain(..) {
        handle.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repair` restores *every* record after an empty restart — including the
/// ones no client read — and a second pass proves convergence through the
/// digest fast path without scanning.
#[test]
fn repair_restores_every_record_after_an_empty_restart() {
    let dir = scratch("repair");
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 2);
    let mut cluster = ClusterClient::connect(&ClusterConfig::new(addrs.clone()).with_replicas(2))
        .expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    let cold = cluster.explore(&points).expect("cold explore");
    let original_lines = json_lines(&records_of(&cold));
    drop(cluster);

    // Node 0 is replaced by an empty node (full replication makes every node
    // an owner of every record, so the replacement address is free to move).
    Client::new(addrs[0].clone())
        .shutdown()
        .expect("shutdown node 0");
    handles.remove(0).join().expect("node 0 thread");
    let (reborn_addr, reborn_handle) = start_empty_node(&dir.join("node-0-reborn"));
    handles.insert(0, reborn_handle);

    let mut cluster = ClusterClient::connect(
        &ClusterConfig::new(vec![reborn_addr, addrs[1].clone()]).with_replicas(2),
    )
    .expect("cluster reconnects");

    let report = cluster.repair().expect("repair");
    assert!(!report.digests_equal, "divergence detected");
    assert_eq!(report.records_seen, points.len() as u64);
    assert_eq!(report.records_copied, points.len() as u64);

    let digests = cluster.digest_all().expect("digest all");
    assert!(
        digests.windows(2).all(|pair| pair[0] == pair[1]),
        "all nodes answer identical digests after repair"
    );

    // Converged cluster: the second pass proves it from digests alone.
    let second = cluster.repair().expect("second repair");
    assert!(second.digests_equal);
    assert_eq!(second.records_copied, 0);

    let records = cluster.mget(&keys).expect("post-repair mget");
    assert_eq!(json_lines(&unwrap_all(records)), original_lines);

    assert_eq!(cluster.shutdown_all(), 2);
    for handle in handles.drain(..) {
        handle.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `rebalance` is how a node joins: records walk from the old ring to their
/// owners under the grown node list, after which a client configured with
/// the new topology answers every key byte-identically and the new node
/// holds its share.
#[test]
fn rebalance_moves_records_onto_a_grown_node_list() {
    let dir = scratch("rebalance");
    let _ = std::fs::remove_dir_all(&dir);
    let (addrs, mut handles) = start_nodes(&dir, 3);

    // The cluster starts as nodes 0 and 1; node 2 runs but owns nothing.
    let old = vec![addrs[0].clone(), addrs[1].clone()];
    let mut cluster = ClusterClient::connect(&ClusterConfig::new(old)).expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    let cold = cluster.explore(&points).expect("cold explore");
    let original_lines = json_lines(&records_of(&cold));

    let report = cluster.rebalance(&addrs).expect("rebalance");
    assert_eq!(report.records_walked, points.len() as u64);
    assert!(
        report.records_stored > 0,
        "the joining node took over part of the ring"
    );

    // A client on the new topology answers every key byte-identically...
    let mut grown =
        ClusterClient::connect(&ClusterConfig::new(addrs.clone())).expect("grown cluster");
    let records = grown.mget(&keys).expect("grown mget");
    assert_eq!(json_lines(&unwrap_all(records)), original_lines);

    // ...and the joining node physically holds its share.
    let mut direct = Connection::connect(&addrs[2]).expect("direct dial");
    let held = direct.mget(&keys).expect("direct mget");
    assert!(
        held.iter().any(Option::is_some),
        "the joining node holds records"
    );

    assert_eq!(grown.shutdown_all(), 3);
    for handle in handles.drain(..) {
        handle.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: rebalance must reach target nodes that are already cluster
/// members over the client's existing keep-alive connections.  On a
/// single-worker node — the `srra serve` default on a one-core box — a
/// second connection sits in the accept queue behind the keep-alive one, so
/// a direct dial for the `put` would starve until the deadline fired.
#[test]
fn rebalance_reuses_cluster_connections_on_single_worker_nodes() {
    let dir = scratch("rebalance-single-worker");
    let _ = std::fs::remove_dir_all(&dir);
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for index in 0..3 {
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 1,
            ..ServerConfig::ephemeral(dir.join(format!("node-{index}")))
        })
        .expect("node binds");
        addrs.push(server.local_addr().to_string());
        handles.push(std::thread::spawn(move || server.run().expect("node runs")));
    }

    let old = vec![addrs[0].clone(), addrs[1].clone()];
    let mut cluster = ClusterClient::connect(&ClusterConfig::new(old)).expect("cluster connects");
    let points = workload();
    let keys = canonicals(&points);
    let cold = cluster.explore(&points).expect("cold explore");
    let original_lines = json_lines(&records_of(&cold));

    // With a direct dial to a member this would time out against the
    // member's single worker; over the keep-alive connections it completes.
    let report = cluster.rebalance(&addrs).expect("rebalance");
    assert_eq!(report.records_walked, points.len() as u64);
    assert!(report.records_stored > 0, "the joining node took its share");

    // Release the old keep-alive connections before dialling the grown
    // topology — each node has exactly one worker to serve one socket.
    drop(cluster);
    let mut grown =
        ClusterClient::connect(&ClusterConfig::new(addrs.clone())).expect("grown cluster");
    let records = grown.mget(&keys).expect("grown mget");
    assert_eq!(json_lines(&unwrap_all(records)), original_lines);

    assert_eq!(grown.shutdown_all(), 3);
    for handle in handles.drain(..) {
        handle.join().expect("server thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
