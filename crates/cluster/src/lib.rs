//! Consistent-hash routing, replication and failover across multiple
//! `srra serve` nodes.
//!
//! One `srra serve` node scales the exploration cache to many clients on one
//! host; this crate scales it across *hosts*.  It adds no new wire protocol —
//! a cluster is just N independent `srra serve` processes plus deterministic
//! client-side placement:
//!
//! 1. [`Ring`] — a consistent-hash ring with virtual nodes.  Every canonical
//!    design-point key is owned by exactly one node (plus optional replica
//!    successors); placement depends only on the node list and the key, so
//!    any number of uncoordinated clients agree on it.
//! 2. [`ClusterClient`] — groups a batch of canonicals by owning node, fans
//!    the groups out as batched wire ops (`mget` / `mexplore`) over per-node
//!    keep-alive [`srra_serve::Connection`]s, and merges the per-point
//!    results back into request order.  Per-node health state marks a node
//!    down on I/O failure (exponential-backoff reconnect), fails its share
//!    of the batch over to the next replica successor, and — with a
//!    replication factor `R > 1` — tees freshly evaluated records to the
//!    `R - 1` successors via the `put` op so reads survive a node death.
//!    Every dial, read and write carries an I/O deadline
//!    ([`ClusterConfig::DEFAULT_TIMEOUT`] by default), so a partitioned or
//!    hung node costs a bounded wait, not a stuck client; reads self-heal
//!    the fleet by writing replica-served records back to their primary
//!    (read-repair); and [`ClusterClient::repair`] /
//!    [`ClusterClient::rebalance`] converge or re-shard the whole dataset
//!    from the client side using the `digest` / `scan` wire ops (see
//!    `docs/cluster.md`, "Self-healing").
//!
//! The CLI front end is `srra cluster --nodes a:p,b:p [--replicas R] ...`;
//! semantics are specified in `docs/cluster.md`.
//!
//! # Quickstart
//!
//! ```
//! use srra_cluster::{ClusterClient, ClusterConfig};
//! use srra_serve::{QueryPoint, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two independent serve nodes (in-process here; `srra serve` in production).
//! let dir = std::env::temp_dir().join(format!("srra-cluster-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut addrs = Vec::new();
//! let mut handles = Vec::new();
//! for index in 0..2 {
//!     let server = Server::bind(&ServerConfig::ephemeral(dir.join(index.to_string())))?;
//!     addrs.push(server.local_addr().to_string());
//!     handles.push(std::thread::spawn(move || server.run()));
//! }
//!
//! // Route a batch over the ring: every point lands on its owning node.
//! let mut cluster = ClusterClient::connect(&ClusterConfig::new(addrs).with_replicas(2))?;
//! let reply = cluster.explore(&[
//!     QueryPoint::new("fir", "cpa", 32),
//!     QueryPoint::new("mat", "fr", 16),
//! ])?;
//! assert_eq!(reply.outcomes.len(), 2);
//! assert_eq!(reply.evaluated, 2, "cold cluster: both points evaluated");
//! assert_eq!(reply.replicated, 2, "replicas hold a copy of each record");
//!
//! cluster.shutdown_all();
//! for handle in handles {
//!     handle.join().expect("server thread")?;
//! }
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod repair;
mod ring;

pub use client::{
    ClusterClient, ClusterConfig, ClusterError, ClusterExploreReply, ClusterMetrics, ClusterStats,
    ClusterTrace, NodeStats,
};
pub use repair::{RebalanceReport, RepairReport};
pub use ring::Ring;
