//! The cluster client: routes batches over the ring, fans them out as
//! pipelined batched wire ops, merges replies back into request order, and
//! keeps per-node health so a dead node degrades service instead of failing
//! it.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use srra_explore::{fnv1a_64, PointRecord};
use srra_obs::{Counter, Gauge, MetricsSnapshot, Registry, SnapshotDelta, Span};
use srra_serve::{
    canonical_for, valid_trace_id, ClientError, Connection, PointOutcome, QueryPoint, ServerStats,
};

use crate::ring::Ring;

/// First back-off after a node failure; doubles per consecutive failure.
const BACKOFF_INITIAL: Duration = Duration::from_millis(50);

/// Ceiling of the reconnect back-off.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Handles into [`Registry::global`] for the cluster-side instruments,
/// resolved once — health transitions and failover requeues record directly.
pub(crate) struct ClusterCounters {
    node_failures: Arc<Counter>,
    node_recoveries: Arc<Counter>,
    backoff_fastfails: Arc<Counter>,
    failover_requeues: Arc<Counter>,
    routed: Arc<Counter>,
    tee_stored: Arc<Counter>,
    tee_failures: Arc<Counter>,
    timeouts: Arc<Counter>,
    read_repairs: Arc<Counter>,
    pub(crate) repair_records: Arc<Counter>,
    /// Nodes currently inside a back-off window (set on the up→down
    /// transition, cleared when the window is forgotten or the node
    /// recovers) — the down/up column of `srra cluster top`.
    nodes_down: Arc<Gauge>,
}

pub(crate) fn cluster_counters() -> &'static ClusterCounters {
    static COUNTERS: OnceLock<ClusterCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = Registry::global();
        ClusterCounters {
            node_failures: registry.counter("cluster_node_failures_total"),
            node_recoveries: registry.counter("cluster_node_recoveries_total"),
            backoff_fastfails: registry.counter("cluster_backoff_fastfails_total"),
            failover_requeues: registry.counter("cluster_failover_requeues_total"),
            routed: registry.counter("cluster_requests_routed_total"),
            tee_stored: registry.counter("cluster_tee_stored_total"),
            tee_failures: registry.counter("cluster_tee_failures_total"),
            timeouts: registry.counter("cluster_timeouts_total"),
            read_repairs: registry.counter("cluster_read_repairs_total"),
            repair_records: registry.counter("cluster_repair_records_total"),
            nodes_down: registry.gauge("cluster_nodes_down"),
        }
    })
}

/// Errors of the cluster client.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster configuration is unusable (empty node list, replicas out
    /// of range, no reachable node at connect time).
    Config(String),
    /// A node answered with a protocol- or server-level error (not an I/O
    /// failure — those trigger failover instead).
    Node {
        /// The node that answered.
        addr: String,
        /// The underlying client error.
        source: ClientError,
    },
    /// Every replica owner of a key is down.
    Unavailable {
        /// What could not be served.
        what: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(message) => write!(f, "cluster config error: {message}"),
            ClusterError::Node { addr, source } => write!(f, "cluster node {addr}: {source}"),
            ClusterError::Unavailable { what } => {
                write!(f, "cluster unavailable: {what}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Whether a node failure is an I/O-level one (connection refused/reset,
/// EOF, ...) — the kind that marks the node down and triggers failover.
/// Server-side and protocol errors are *answers* and propagate instead.
fn is_io(err: &ClientError) -> bool {
    matches!(err, ClientError::Io(_))
}

/// Counts deadline expiries.  A timeout is handled exactly like a reset (the
/// node is marked down and the work fails over) but gets its own series: a
/// fleet timing out looks very different on a dashboard from a fleet
/// refusing connections.
fn note_timeout(err: &ClientError) {
    if let ClientError::Io(io) = err {
        if matches!(
            io.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ) {
            cluster_counters().timeouts.inc();
        }
    }
}

/// Configuration of a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node addresses (`host:port`), order-insensitive for placement but
    /// reported in this order by [`ClusterClient::stats`].
    pub nodes: Vec<String>,
    /// Ring replication factor: every key lives on its owner plus the next
    /// `replicas - 1` distinct ring successors.  `1` disables replication.
    pub replicas: usize,
    /// Virtual nodes per physical node.
    pub vnodes: usize,
    /// Speak the length-prefixed binary wire codec to every node instead of
    /// JSON lines (the nodes auto-detect per frame, so a mixed fleet of
    /// binary and JSON clients is fine).
    pub binary: bool,
    /// I/O deadline applied to every node dial, read and write.  A node that
    /// stays silent past the deadline counts as failed exactly like one that
    /// resets the connection: it is marked down and its share of the work
    /// fails over to the next replica successor, so a partition costs a
    /// bounded wait instead of a hang.  `None` disables deadlines (a hung
    /// node then blocks the call indefinitely).
    pub timeout: Option<Duration>,
}

impl ClusterConfig {
    /// The default per-call I/O deadline.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

    /// A configuration over `nodes` with no replication,
    /// [`Ring::DEFAULT_VNODES`] virtual nodes and the
    /// [default I/O deadline](Self::DEFAULT_TIMEOUT).
    pub fn new<I, S>(nodes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            nodes: nodes.into_iter().map(Into::into).collect(),
            replicas: 1,
            vnodes: Ring::DEFAULT_VNODES,
            binary: false,
            timeout: Some(Self::DEFAULT_TIMEOUT),
        }
    }

    /// Sets the replication factor.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the virtual-node count.
    #[must_use]
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Selects the binary wire codec for every node connection (including
    /// the replication tees).
    #[must_use]
    pub fn with_binary(mut self, binary: bool) -> Self {
        self.binary = binary;
        self
    }

    /// Sets the per-call I/O deadline; `None` disables it.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }
}

/// One node's client-side state: the cached keep-alive connection and the
/// health bookkeeping.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) addr: String,
    /// Dial connections in binary-codec mode.
    binary: bool,
    /// I/O deadline applied to dials, reads and writes.
    timeout: Option<Duration>,
    /// Trace id stamped onto every request this node serves, when set.
    /// Survives reconnects: a fresh connection re-applies it before use, so
    /// one logical trace spans a node's sub-batches even across failures.
    trace: Option<String>,
    connection: Option<Connection>,
    /// `Some(instant)` while the node is marked down; no connect attempt is
    /// made before it.
    pub(crate) down_until: Option<Instant>,
    /// Next back-off period (doubles per consecutive failure).
    backoff: Duration,
    /// Requests this client successfully routed to the node.
    routed: u64,
}

impl Node {
    fn new(addr: String, binary: bool, timeout: Option<Duration>) -> Self {
        Self {
            addr,
            binary,
            timeout,
            trace: None,
            connection: None,
            down_until: None,
            backoff: BACKOFF_INITIAL,
            routed: 0,
        }
    }

    /// Whether the node is currently marked down (back-off window open).
    fn is_down(&self) -> bool {
        self.down_until.is_some_and(|until| Instant::now() < until)
    }

    /// Marks the node down: drops the connection and opens (and doubles) the
    /// back-off window.
    fn mark_down(&mut self) {
        cluster_counters().node_failures.inc();
        if self.down_until.is_none() {
            cluster_counters().nodes_down.inc();
        }
        self.connection = None;
        self.down_until = Some(Instant::now() + self.backoff);
        self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
    }

    /// Marks the node healthy and resets the back-off.
    fn mark_up(&mut self) {
        if self.down_until.take().is_some() {
            cluster_counters().node_recoveries.inc();
            cluster_counters().nodes_down.dec();
        }
        self.backoff = BACKOFF_INITIAL;
    }

    /// Forgets the back-off window without counting a recovery — the probe
    /// and repair paths dial through remembered down-state deliberately, and
    /// the call's outcome re-marks the node either way.  Keeps the
    /// `cluster_nodes_down` gauge honest where a bare `down_until = None`
    /// would leak a decrement.
    fn forget_down_window(&mut self) {
        if self.down_until.take().is_some() {
            cluster_counters().nodes_down.dec();
        }
    }

    /// The node's keep-alive connection, dialling if necessary.  Fails fast
    /// (without touching the network) while the back-off window is open.
    fn ensure_connection(&mut self) -> Result<&mut Connection, ClientError> {
        if self.is_down() {
            cluster_counters().backoff_fastfails.inc();
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!(
                    "node {} is marked down (reconnect back-off open)",
                    self.addr
                ),
            )));
        }
        if self.connection.is_none() {
            let dialled = if self.binary {
                Connection::connect_binary_with_timeout(&self.addr, self.timeout)
            } else {
                Connection::connect_with_timeout(&self.addr, self.timeout)
            };
            match dialled {
                Ok(mut connection) => {
                    connection
                        .set_trace(self.trace.as_deref())
                        .expect("trace id validated by ClusterClient::set_trace");
                    self.connection = Some(connection);
                }
                Err(err) => {
                    if is_io(&err) {
                        note_timeout(&err);
                        self.mark_down();
                    }
                    return Err(err);
                }
            }
        }
        Ok(self.connection.as_mut().expect("connection just ensured"))
    }

    /// Runs one wire call against the node, maintaining the health state: an
    /// I/O failure (including a deadline expiry) marks the node down (the
    /// `Connection` has already retried once internally for stale-socket
    /// cases), success marks it up.
    pub(crate) fn call<T>(
        &mut self,
        op: impl FnOnce(&mut Connection) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let connection = self.ensure_connection()?;
        match op(connection) {
            Ok(value) => {
                self.routed += 1;
                cluster_counters().routed.inc();
                self.mark_up();
                Ok(value)
            }
            Err(err) => {
                if is_io(&err) {
                    note_timeout(&err);
                    self.mark_down();
                }
                Err(err)
            }
        }
    }
}

/// One node's entry in [`ClusterStats`].
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The node address.
    pub addr: String,
    /// Whether the node answered the stats probe.
    pub up: bool,
    /// Requests this client routed to the node (client-side counter).
    pub routed: u64,
    /// The node's own server statistics; `None` when unreachable.
    pub stats: Option<ServerStats>,
}

/// Aggregated statistics of the whole cluster, as seen by one client.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-node statistics, in configuration order.
    pub nodes: Vec<NodeStats>,
    /// The configured replication factor.
    pub replicas: usize,
}

impl ClusterStats {
    /// Nodes that answered the probe.
    pub fn nodes_up(&self) -> usize {
        self.nodes.iter().filter(|node| node.up).count()
    }

    /// Total requests served across reachable nodes.
    pub fn total_requests(&self) -> u64 {
        self.sum(|stats| stats.requests)
    }

    /// Total records stored across reachable nodes (with replication, a
    /// record counts once per replica holding it).
    pub fn total_records(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|node| node.stats.as_ref())
            .map(ServerStats::records)
            .sum()
    }

    /// Total points evaluated across reachable nodes.
    pub fn total_evaluated(&self) -> u64 {
        self.sum(|stats| stats.evaluated)
    }

    fn sum(&self, field: impl Fn(&ServerStats) -> u64) -> u64 {
        self.nodes
            .iter()
            .filter_map(|node| node.stats.as_ref())
            .map(field)
            .sum()
    }
}

/// The cluster-wide telemetry gathered by [`ClusterClient::metrics`].
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Per-node metrics snapshots, in configuration order; `None` when the
    /// node did not answer the scrape.
    pub nodes: Vec<(String, Option<MetricsSnapshot>)>,
    /// All reachable nodes' snapshots merged (counters summed, histograms
    /// merged bucket-wise).
    pub aggregate: MetricsSnapshot,
    /// This process's own client-side telemetry (`client_*` / `cluster_*`
    /// instruments).
    pub client: MetricsSnapshot,
}

impl ClusterMetrics {
    /// Nodes that answered the scrape.
    pub fn nodes_up(&self) -> usize {
        self.nodes
            .iter()
            .filter(|(_, snapshot)| snapshot.is_some())
            .count()
    }
}

/// One trace's spans gathered from every node by
/// [`ClusterClient::trace`] — a cluster-wide request waterfall.
#[derive(Debug, Clone)]
pub struct ClusterTrace {
    /// Per-node span lists, in configuration order; `None` when the node did
    /// not answer the scrape (a node with no spans for the id answers
    /// `Some` of an empty list).
    pub nodes: Vec<(String, Option<Vec<Span>>)>,
    /// All reachable nodes' spans merged into one tree, deduplicated by span
    /// id and ordered by start time.  Span ids are seeded per process, so
    /// different nodes' spans interleave without colliding.
    pub merged: Vec<Span>,
}

impl ClusterTrace {
    /// Nodes that answered the scrape.
    pub fn nodes_up(&self) -> usize {
        self.nodes
            .iter()
            .filter(|(_, spans)| spans.is_some())
            .count()
    }
}

/// The result of one cluster [`explore`](ClusterClient::explore) call.
#[derive(Debug, Clone)]
pub struct ClusterExploreReply {
    /// One outcome per requested point, in request order.
    pub outcomes: Vec<PointOutcome>,
    /// Points answered from some node's shards.
    pub hits: u64,
    /// Points evaluated on demand (each on exactly one node).
    pub evaluated: u64,
    /// Freshly evaluated records teed to replica successors and stored there
    /// for the first time (0 unless `replicas > 1`).
    pub replicated: u64,
}

/// A client over a cluster of `srra serve` nodes.
///
/// Routing is deterministic: the [`Ring`] places every canonical key on one
/// owner node (plus `replicas - 1` successors).  Batches are grouped per
/// owning node, fanned out as the batched wire ops (`mget` / `mexplore`) over
/// per-node keep-alive [`Connection`]s, and the per-point results merged back
/// into request order.  A node that fails at the I/O level is marked down
/// (exponential-backoff reconnect) and its share of the batch fails over to
/// the next replica successor — with `replicas == 1` there is nowhere to fail
/// over to, and the call reports [`ClusterError::Unavailable`].
#[derive(Debug)]
pub struct ClusterClient {
    pub(crate) ring: Ring,
    pub(crate) nodes: Vec<Node>,
    pub(crate) replicas: usize,
    pub(crate) vnodes: usize,
    pub(crate) binary: bool,
    pub(crate) timeout: Option<Duration>,
}

impl ClusterClient {
    /// Builds the ring and probes every node once with `ping`, marking
    /// unreachable nodes down.  At least one node must answer.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unusable configuration or when no
    /// node is reachable.
    pub fn connect(config: &ClusterConfig) -> Result<Self, ClusterError> {
        let ring =
            Ring::new(config.nodes.iter().cloned(), config.vnodes).map_err(ClusterError::Config)?;
        if config.replicas == 0 || config.replicas > ring.len() {
            return Err(ClusterError::Config(format!(
                "replicas must be between 1 and the node count ({}), got {}",
                ring.len(),
                config.replicas
            )));
        }
        let mut client = Self {
            nodes: ring
                .nodes()
                .iter()
                .map(|addr| Node::new(addr.clone(), config.binary, config.timeout))
                .collect(),
            ring,
            replicas: config.replicas,
            vnodes: config.vnodes,
            binary: config.binary,
            timeout: config.timeout,
        };
        let up = client.ping_all().into_iter().filter(|(_, up)| *up).count();
        if up == 0 {
            return Err(ClusterError::Config(format!(
                "no reachable node among: {}",
                client
                    .nodes
                    .iter()
                    .map(|node| node.addr.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        Ok(client)
    }

    /// The placement ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Sets (or clears, with `None`) the trace id stamped onto every request
    /// this client routes, across all nodes.  One cluster call fans out as
    /// per-node sub-batches; stamping them all with the same id is what
    /// lets [`trace`](ClusterClient::trace) reassemble the cluster-wide
    /// waterfall afterwards.  Applied to live connections immediately and
    /// re-applied whenever a node reconnects.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for ids that are empty, longer than
    /// [`srra_serve::TRACE_MAX_LEN`] bytes, or contain characters outside
    /// `[A-Za-z0-9._-]`.
    pub fn set_trace(&mut self, trace: Option<&str>) -> Result<(), ClusterError> {
        if let Some(id) = trace {
            if !valid_trace_id(id) {
                return Err(ClusterError::Config(format!(
                    "invalid trace id `{id}`: want 1-64 bytes of [A-Za-z0-9._-]"
                )));
            }
        }
        for node in &mut self.nodes {
            node.trace = trace.map(str::to_owned);
            if let Some(connection) = &mut node.connection {
                connection
                    .set_trace(trace)
                    .expect("trace id validated above");
            }
        }
        Ok(())
    }

    /// Scrapes every node's flight recorder for `id` and merges the answers
    /// into one cluster-wide span tree (deduplicated by span id, ordered by
    /// start time).  Unreachable nodes report `None` instead of failing the
    /// call; a node that retains nothing for the id reports an empty list.
    pub fn trace(&mut self, id: &str) -> ClusterTrace {
        let nodes: Vec<(String, Option<Vec<Span>>)> = self
            .nodes
            .iter_mut()
            .map(|node| {
                let spans = node.call(|connection| connection.trace_spans(id)).ok();
                (node.addr.clone(), spans)
            })
            .collect();
        let mut merged: Vec<Span> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (_, spans) in &nodes {
            for span in spans.iter().flatten() {
                if seen.insert(span.span_id) {
                    merged.push(span.clone());
                }
            }
        }
        merged.sort_by_key(|span| (span.start_us, span.span_id));
        ClusterTrace { nodes, merged }
    }

    /// Probes every node with a `ping`; returns `(addr, reachable)` in
    /// configuration order.  A liveness probe must actually probe: each node
    /// is dialled even inside an open back-off window (remembered down-state
    /// would otherwise report `false` without touching the network, hiding a
    /// node that already recovered).  Nodes that fail the probe are marked
    /// down as usual.
    pub fn ping_all(&mut self) -> Vec<(String, bool)> {
        self.nodes
            .iter_mut()
            .map(|node| {
                node.forget_down_window();
                let up = node.call(Connection::ping).is_ok();
                (node.addr.clone(), up)
            })
            .collect()
    }

    /// The shared routing/failover loop of [`mget`](ClusterClient::mget) and
    /// [`explore`](ClusterClient::explore).
    ///
    /// `pending` holds `(item index, owner-list attempt)` pairs;
    /// `canonicals[item]` names item's key.  Each round groups the pending
    /// items by the replica owner at their current attempt and invokes
    /// `call` once per `(node, items)` group — `call` performs the wire op
    /// and merges the group's results into the caller's buffers.  A group
    /// whose call fails at the I/O level (the node is down) is re-queued
    /// against the next replica successor; a server/protocol error aborts
    /// with [`ClusterError::Node`]; an item that exhausts its owner list
    /// aborts with [`ClusterError::Unavailable`].
    fn route_with_failover<C>(
        &mut self,
        mut pending: Vec<(usize, usize)>,
        canonicals: &[String],
        mut call: C,
    ) -> Result<(), ClusterError>
    where
        C: FnMut(&mut Self, usize, &[(usize, usize)]) -> Result<(), ClientError>,
    {
        while !pending.is_empty() {
            let mut groups: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
            for (item, attempt) in pending.drain(..) {
                let key = fnv1a_64(canonicals[item].as_bytes());
                let owners = self.ring.owners(key, self.replicas);
                let Some(&node) = owners.get(attempt) else {
                    return Err(ClusterError::Unavailable {
                        what: format!(
                            "all {} replica owner(s) of `{}` are down",
                            owners.len(),
                            canonicals[item]
                        ),
                    });
                };
                groups.entry(node).or_default().push((item, attempt));
            }
            for (node, items) in groups {
                match call(self, node, &items) {
                    Ok(()) => {}
                    Err(err) if is_io(&err) => {
                        cluster_counters().failover_requeues.add(items.len() as u64);
                        pending.extend(items.iter().map(|&(item, attempt)| (item, attempt + 1)));
                    }
                    Err(err) => {
                        return Err(ClusterError::Node {
                            addr: self.nodes[node].addr.clone(),
                            source: err,
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Looks one canonical string up; `None` is a cluster-wide miss.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Unavailable`] when every replica owner is down, and
    /// node-level server/protocol errors.
    pub fn get(&mut self, canonical: &str) -> Result<Option<PointRecord>, ClusterError> {
        let mut records = self.mget(std::slice::from_ref(&canonical.to_owned()))?;
        Ok(records.pop().flatten())
    }

    /// Looks a batch of canonical strings up, routed per owner node, results
    /// in request order (`None` = miss).  When a node is down its share of
    /// the batch is read from the next replica successor.
    ///
    /// With `replicas > 1` the lookup also read-repairs: a record a replica
    /// successor served because the primary was down, and a record a
    /// successor still holds after the primary answered a miss (the
    /// empty-disk restart case), are written back to the primary owner best
    /// effort (`cluster_read_repairs_total`), so ordinary reads converge the
    /// cluster without an operator in the loop.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Unavailable`] when some key's replica owners are all
    /// down, and node-level server/protocol errors.
    pub fn mget(
        &mut self,
        canonicals: &[String],
    ) -> Result<Vec<Option<PointRecord>>, ClusterError> {
        let mut results: Vec<Option<PointRecord>> = vec![None; canonicals.len()];
        let mut repairs: Vec<PointRecord> = Vec::new();
        let pending: Vec<(usize, usize)> = (0..canonicals.len()).map(|i| (i, 0)).collect();
        self.route_with_failover(pending, canonicals, |client, node, items| {
            let batch: Vec<String> = items
                .iter()
                .map(|&(item, _)| canonicals[item].clone())
                .collect();
            let records = client.nodes[node].call(|connection| connection.mget(&batch))?;
            if records.len() != items.len() {
                // A short reply must surface as a node error, not silently
                // leave the tail of the batch looking like misses.
                return Err(ClientError::Protocol(format!(
                    "mget answered {} of {} canonicals",
                    records.len(),
                    items.len()
                )));
            }
            for (&(item, attempt), record) in items.iter().zip(records) {
                if attempt > 0 {
                    // Served by a replica successor because an earlier owner
                    // was down: queue a write-back to the primary.
                    if let Some(record) = &record {
                        repairs.push(record.clone());
                    }
                }
                results[item] = record;
            }
            Ok(())
        })?;
        // A miss reported by a *healthy* primary may still live on a replica
        // successor — the primary may have lost its disk and restarted
        // empty.  Ask the successors best-effort before declaring a
        // cluster-wide miss, and queue whatever they hold for write-back.
        if self.replicas > 1 && results.iter().any(Option::is_none) {
            let mut missing: Vec<usize> = results
                .iter()
                .enumerate()
                .filter_map(|(item, record)| record.is_none().then_some(item))
                .collect();
            for attempt in 1..self.replicas {
                if missing.is_empty() {
                    break;
                }
                let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                for &item in &missing {
                    let key = fnv1a_64(canonicals[item].as_bytes());
                    if let Some(&node) = self.ring.owners(key, self.replicas).get(attempt) {
                        groups.entry(node).or_default().push(item);
                    }
                }
                for (node, items) in groups {
                    let batch: Vec<String> =
                        items.iter().map(|&item| canonicals[item].clone()).collect();
                    let Ok(records) = self.nodes[node].call(|connection| connection.mget(&batch))
                    else {
                        continue;
                    };
                    for (&item, record) in items.iter().zip(records) {
                        if let Some(record) = record {
                            repairs.push(record.clone());
                            results[item] = Some(record);
                        }
                    }
                }
                missing.retain(|&item| results[item].is_none());
            }
        }
        self.read_repair(repairs);
        Ok(results)
    }

    /// Best-effort write-back of records that replica successors served on
    /// behalf of their primary owner: the records are `put` to the primary,
    /// healing it the moment it is reachable again.  Dials through the
    /// primary's back-off window — the whole point is to reach a node that
    /// was down moments ago.  Replica copies newly stored on the primary
    /// count in `cluster_read_repairs_total`.
    fn read_repair(&mut self, records: Vec<PointRecord>) {
        if records.is_empty() {
            return;
        }
        let mut groups: BTreeMap<usize, Vec<PointRecord>> = BTreeMap::new();
        for record in records {
            let owners = self.ring.owners(record.key, self.replicas);
            if let Some(&primary) = owners.first() {
                groups.entry(primary).or_default().push(record);
            }
        }
        for (node, batch) in groups {
            self.nodes[node].forget_down_window();
            if let Ok(count) = self.nodes[node].call(|connection| connection.put(&batch)) {
                cluster_counters().read_repairs.add(count);
            }
        }
    }

    /// Answers a batch of design points: each point is routed to the node
    /// owning its canonical key and answered there (shard hit or exactly-once
    /// evaluation); per-point outcomes come back in request order.  Points
    /// that fail to resolve client-side (unknown algorithm/device) fail in
    /// place without travelling.  With `replicas > 1`, freshly evaluated
    /// records are teed to the replica successors (best effort — a replica
    /// that is down simply misses the tee and heals on a later fallback).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Unavailable`] when some point's replica owners are
    /// all down, and node-level server/protocol errors.
    pub fn explore(&mut self, points: &[QueryPoint]) -> Result<ClusterExploreReply, ClusterError> {
        let mut outcomes: Vec<Option<PointOutcome>> = vec![None; points.len()];
        let mut canonicals: Vec<String> = vec![String::new(); points.len()];
        let mut pending: Vec<(usize, usize)> = Vec::with_capacity(points.len());
        for (index, point) in points.iter().enumerate() {
            match canonical_for(point) {
                Ok(canonical) => {
                    canonicals[index] = canonical;
                    pending.push((index, 0));
                }
                Err(error) => outcomes[index] = Some(PointOutcome::Failed { error }),
            }
        }
        let mut hits = 0;
        let mut evaluated = 0;
        let mut replicated = 0;
        self.route_with_failover(pending, &canonicals, |client, node, items| {
            let batch: Vec<QueryPoint> = items
                .iter()
                .map(|&(item, _)| points[item].clone())
                .collect();
            let reply = client.nodes[node].call(|connection| connection.mexplore(&batch))?;
            if reply.outcomes.len() != items.len() {
                // A short reply must surface as a node error, not as a
                // missing outcome (which would panic the final unwrap).
                return Err(ClientError::Protocol(format!(
                    "mexplore answered {} of {} points",
                    reply.outcomes.len(),
                    items.len()
                )));
            }
            hits += reply.hits;
            evaluated += reply.evaluated;
            let mut fresh = Vec::new();
            for (&(item, _), outcome) in items.iter().zip(reply.outcomes) {
                if client.replicas > 1 {
                    if let PointOutcome::Answered { record, hit: false } = &outcome {
                        fresh.push(record.clone());
                    }
                }
                outcomes[item] = Some(outcome);
            }
            if !fresh.is_empty() {
                replicated += client.tee(node, &fresh);
            }
            Ok(())
        })?;
        Ok(ClusterExploreReply {
            outcomes: outcomes
                .into_iter()
                .map(|outcome| outcome.expect("every point resolved or failed in place"))
                .collect(),
            hits,
            evaluated,
            replicated,
        })
    }

    /// Tees freshly evaluated records to every replica owner other than the
    /// node that evaluated them.  Best effort: a failing replica is marked
    /// down and skipped (its copy heals when a later explore falls back to
    /// it and re-evaluates).  Returns how many records were newly stored on
    /// replicas.
    fn tee(&mut self, source: usize, records: &[PointRecord]) -> u64 {
        let mut groups: BTreeMap<usize, Vec<PointRecord>> = BTreeMap::new();
        for record in records {
            for owner in self.ring.owners(record.key, self.replicas) {
                if owner != source {
                    groups.entry(owner).or_default().push(record.clone());
                }
            }
        }
        let mut stored = 0;
        for (node, batch) in groups {
            match self.nodes[node].call(|connection| connection.put(&batch)) {
                Ok(count) => {
                    cluster_counters().tee_stored.add(count);
                    stored += count;
                }
                Err(_) => cluster_counters().tee_failures.inc(),
            }
        }
        stored
    }

    /// Per-node and aggregate statistics.  Unreachable nodes report
    /// `up: false` with no server stats instead of failing the call.
    pub fn stats(&mut self) -> ClusterStats {
        let nodes = self
            .nodes
            .iter_mut()
            .map(|node| {
                let stats = node.call(Connection::stats).ok();
                NodeStats {
                    addr: node.addr.clone(),
                    up: stats.is_some(),
                    routed: node.routed,
                    stats,
                }
            })
            .collect();
        ClusterStats {
            nodes,
            replicas: self.replicas,
        }
    }

    /// Scrapes every node's telemetry and merges the reachable answers into
    /// one cluster-wide aggregate, alongside this process's own client-side
    /// instruments.  Unreachable nodes report `None` instead of failing the
    /// call.
    pub fn metrics(&mut self) -> ClusterMetrics {
        let nodes: Vec<(String, Option<MetricsSnapshot>)> = self
            .nodes
            .iter_mut()
            .map(|node| {
                let snapshot = node.call(Connection::metrics).ok();
                (node.addr.clone(), snapshot)
            })
            .collect();
        let mut aggregate = MetricsSnapshot::default();
        for (_, snapshot) in &nodes {
            if let Some(snapshot) = snapshot {
                aggregate.merge(snapshot);
            }
        }
        ClusterMetrics {
            nodes,
            aggregate,
            client: Registry::global().snapshot(),
        }
    }

    /// Fetches each node's metrics delta across its trailing `window_us`
    /// window, in configuration order.  A node that is unreachable — or has
    /// too few samples in the window, e.g. its sampler is off — reports
    /// `None` instead of failing the sweep.  Merging the `Some` deltas
    /// (see [`SnapshotDelta::merge`]) yields the fleet-wide view `srra
    /// cluster top` renders.
    pub fn series_delta(&mut self, window_us: u64) -> Vec<(String, Option<SnapshotDelta>)> {
        self.nodes
            .iter_mut()
            .map(|node| {
                let delta = node
                    .call(|connection| connection.series_delta(window_us))
                    .ok();
                (node.addr.clone(), delta)
            })
            .collect()
    }

    /// Asks every reachable node to shut down gracefully; returns how many
    /// acknowledged.
    pub fn shutdown_all(&mut self) -> usize {
        self.nodes
            .iter_mut()
            .map(|node| node.call(Connection::shutdown).is_ok())
            .filter(|&ok| ok)
            .count()
    }
}
