//! Anti-entropy repair and ring rebalance: the operator-facing half of the
//! self-healing story.
//!
//! Read-repair (see [`ClusterClient::mget`]) converges the records that
//! clients actually touch; this module converges everything else.  Both
//! operations are pure clients of the existing wire protocol — `digest`,
//! `scan`, `mget` and `put` — so any process that can reach the nodes can
//! run them, with no coordination service and no server-side state machine:
//!
//! * [`ClusterClient::repair`] makes every record reach all of its replica
//!   owners under the *current* ring.  Fully replicated clusters
//!   (`replicas == nodes`) get a fast path: when every node answers the same
//!   per-shard digest vector the replicas are already converged and nothing
//!   is scanned.  Otherwise each node's canonicals are walked with the paged
//!   `scan` op, owners are recomputed ring-side, and only the records an
//!   owner lacks are fetched and copied — the diff, not the dataset.
//! * [`ClusterClient::rebalance`] moves every record to its owners under a
//!   *new* node list — the client-side half of adding or removing nodes.
//!   Placement is deterministic (the ring depends only on the node names and
//!   vnode count), so walking the old nodes and `put`-ting each record to
//!   its new owners is all a topology change takes; consistent hashing keeps
//!   the moved fraction near `1/n`.

use std::collections::BTreeMap;

use srra_explore::{fnv1a_64, PointRecord};
use srra_serve::{ClientError, Connection, ShardDigest};

use crate::client::{cluster_counters, ClusterClient, ClusterError};
use crate::ring::Ring;

/// Page size for walking a node's shards with `scan`, and batch size for the
/// `mget`/`put` record copies.
const PAGE: usize = 512;

/// The result of one [`ClusterClient::repair`] pass.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Whether the digest fast path proved the cluster converged without
    /// scanning (possible only with full replication, `replicas == nodes`).
    pub digests_equal: bool,
    /// Distinct canonical records seen across all nodes (0 on the fast
    /// path's early return — nothing was scanned).
    pub records_seen: u64,
    /// Replica copies created: records put to owners that lacked them.
    pub records_copied: u64,
}

/// The result of one [`ClusterClient::rebalance`] pass.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Record copies walked on the old nodes (a record replicated on R old
    /// nodes counts R times).
    pub records_walked: u64,
    /// Records newly stored on target nodes.
    pub records_stored: u64,
}

fn node_err(addr: &str, source: ClientError) -> ClusterError {
    ClusterError::Node {
        addr: addr.to_owned(),
        source,
    }
}

impl ClusterClient {
    /// Every node's per-shard anti-entropy digests, in configuration order.
    /// Two nodes holding the same record set answer identical vectors, so
    /// comparing these is how convergence is checked without moving data.
    /// Dials through any open back-off window — a maintenance probe must
    /// reach the fleet, not remembered state.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Node`] for the first node that fails to answer.
    pub fn digest_all(&mut self) -> Result<Vec<Vec<ShardDigest>>, ClusterError> {
        (0..self.nodes.len())
            .map(|index| {
                self.nodes[index].down_until = None;
                self.nodes[index]
                    .call(Connection::digest)
                    .map_err(|err| node_err(&self.nodes[index].addr, err))
            })
            .collect()
    }

    /// All canonical strings a node holds, walked shard by shard with the
    /// paged `scan` op.
    fn scan_node(&mut self, node: usize) -> Result<Vec<String>, ClusterError> {
        self.nodes[node].down_until = None;
        let shards = self.nodes[node]
            .call(Connection::digest)
            .map_err(|err| node_err(&self.nodes[node].addr, err))?
            .len();
        let mut canonicals = Vec::new();
        for shard in 0..shards as u64 {
            let mut offset = 0u64;
            loop {
                let (page, done) = self.nodes[node]
                    .call(|connection| connection.scan(shard, offset, PAGE as u64))
                    .map_err(|err| node_err(&self.nodes[node].addr, err))?;
                offset += page.len() as u64;
                canonicals.extend(page);
                if done {
                    break;
                }
            }
        }
        Ok(canonicals)
    }

    /// Anti-entropy pass: makes every record reach all of its replica owners
    /// under the current ring.  With full replication the per-node digests
    /// are compared first and an already-converged cluster returns without
    /// scanning anything; otherwise each node is scanned, owners are
    /// recomputed, and only the missing copies travel.  Copies count in
    /// `cluster_repair_records_total`.
    ///
    /// Repair needs the whole fleet reachable (it must see every replica to
    /// know what is missing); run it after the nodes are back up — e.g.
    /// after replacing a failed node's empty disk.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Node`] for the first node that fails a digest, scan,
    /// fetch or copy.
    pub fn repair(&mut self) -> Result<RepairReport, ClusterError> {
        let mut report = RepairReport::default();
        if self.replicas == self.nodes.len() {
            let digests = self.digest_all()?;
            if digests.windows(2).all(|pair| pair[0] == pair[1]) {
                report.digests_equal = true;
                return Ok(report);
            }
        }
        // Who holds what.  BTreeMap keeps the copy batches in deterministic
        // order, which keeps repair runs comparable in tests and logs.
        let mut holders: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for node in 0..self.nodes.len() {
            for canonical in self.scan_node(node)? {
                holders.entry(canonical).or_default().push(node);
            }
        }
        report.records_seen = holders.len() as u64;
        // The diff: for every record, the owners that lack it, fed from the
        // first node holding it.
        let mut moves: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
        for (canonical, holding) in &holders {
            let owners = self
                .ring
                .owners(fnv1a_64(canonical.as_bytes()), self.replicas);
            for &owner in &owners {
                if !holding.contains(&owner) {
                    moves
                        .entry((holding[0], owner))
                        .or_default()
                        .push(canonical.clone());
                }
            }
        }
        for ((source, target), canonicals) in moves {
            for chunk in canonicals.chunks(PAGE) {
                let records: Vec<PointRecord> = self.nodes[source]
                    .call(|connection| connection.mget(chunk))
                    .map_err(|err| node_err(&self.nodes[source].addr, err))?
                    .into_iter()
                    .flatten()
                    .collect();
                if records.is_empty() {
                    continue;
                }
                self.nodes[target].down_until = None;
                let stored = self.nodes[target]
                    .call(|connection| connection.put(&records))
                    .map_err(|err| node_err(&self.nodes[target].addr, err))?;
                cluster_counters().repair_records.add(stored);
                report.records_copied += stored;
            }
        }
        Ok(report)
    }

    /// Moves every record to its owners under a *new* node list: walks the
    /// old nodes' shards, recomputes each record's owners on a ring built
    /// from `to` (same vnode count and replication factor as this client),
    /// and `put`s the records there.  Targets that are already cluster
    /// members are reached over this client's keep-alive connections — a
    /// serve node may run a single worker, where a second connection would
    /// starve behind the first until the deadline — and only genuinely new
    /// nodes are dialled directly (same codec and timeout).  Old nodes that
    /// remain in `to` keep the records they already own; retired nodes can
    /// be shut down afterwards.  Purely client-side — the servers never
    /// learn the topology changed.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unusable target list (empty,
    /// duplicates, or fewer nodes than the replication factor) and
    /// [`ClusterError::Node`] for the first node that fails a scan, fetch or
    /// store.
    pub fn rebalance(&mut self, to: &[String]) -> Result<RebalanceReport, ClusterError> {
        let target_ring =
            Ring::new(to.iter().cloned(), self.vnodes).map_err(ClusterError::Config)?;
        if self.replicas > target_ring.len() {
            return Err(ClusterError::Config(format!(
                "replication factor {} exceeds the target node count {}",
                self.replicas,
                target_ring.len()
            )));
        }
        let mut report = RebalanceReport::default();
        // Target slots: an existing cluster member is addressed through its
        // keep-alive connection (`Ok(index)`); a new node gets a lazily
        // dialled direct connection (`Err(slot)`).
        let members: Vec<Option<usize>> = target_ring
            .nodes()
            .iter()
            .map(|addr| self.nodes.iter().position(|node| node.addr == *addr))
            .collect();
        let mut targets: Vec<Option<Connection>> = (0..target_ring.len()).map(|_| None).collect();
        for node in 0..self.nodes.len() {
            let canonicals = self.scan_node(node)?;
            for chunk in canonicals.chunks(PAGE) {
                let records = self.nodes[node]
                    .call(|connection| connection.mget(chunk))
                    .map_err(|err| node_err(&self.nodes[node].addr, err))?;
                let mut groups: BTreeMap<usize, Vec<PointRecord>> = BTreeMap::new();
                for record in records.into_iter().flatten() {
                    report.records_walked += 1;
                    for owner in target_ring.owners(record.key, self.replicas) {
                        groups.entry(owner).or_default().push(record.clone());
                    }
                }
                for (owner, batch) in groups {
                    let addr = &target_ring.nodes()[owner];
                    let stored = if let Some(member) = members[owner] {
                        self.nodes[member].down_until = None;
                        self.nodes[member]
                            .call(|connection| connection.put(&batch))
                            .map_err(|err| node_err(addr, err))?
                    } else {
                        let connection = match &mut targets[owner] {
                            Some(connection) => connection,
                            slot @ None => {
                                let dialled = if self.binary {
                                    Connection::connect_binary_with_timeout(addr, self.timeout)
                                } else {
                                    Connection::connect_with_timeout(addr, self.timeout)
                                }
                                .map_err(|err| node_err(addr, err))?;
                                slot.insert(dialled)
                            }
                        };
                        connection.put(&batch).map_err(|err| node_err(addr, err))?
                    };
                    report.records_stored += stored;
                }
            }
        }
        Ok(report)
    }
}
