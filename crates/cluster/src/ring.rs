//! The consistent-hash ring: deterministic placement of canonical keys on
//! nodes, with virtual nodes for balance.
//!
//! Every node contributes `vnodes` points on a 64-bit ring; a key is owned by
//! the node of the first ring point at or after the key's (mixed) position,
//! wrapping at the top.  Replica owners are the next *distinct* nodes walking
//! clockwise from there.  Placement depends only on the node names, the vnode
//! count and the key — two processes configured with the same node list route
//! every key identically, which is what lets independent `ClusterClient`s
//! (and the `srra cluster` CLI) share a cluster without coordination.
//!
//! Adding or removing one node moves only the keys whose owning ring arc
//! changed — on average `1/n` of the key space — which is the point of
//! consistent hashing over `key % n` routing.

use srra_explore::fnv1a_64;

/// Finalizing mix (SplitMix64): FNV-1a is fast but its low bits correlate for
/// short suffix changes (`addr#0`, `addr#1`, ...); the finalizer spreads the
/// vnode points and key positions uniformly over the whole 64-bit ring, which
/// the balance bound of the property tests depends on.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over a fixed set of named nodes.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Node names (addresses), in configuration order; ring points refer to
    /// nodes by index into this list.
    nodes: Vec<String>,
    /// `(position, node index)` pairs, sorted by position.
    points: Vec<(u64, u32)>,
    /// Virtual nodes per physical node.
    vnodes: usize,
}

impl Ring {
    /// Virtual nodes per physical node when the caller does not choose:
    /// enough for the max/min key-share ratio to stay under 2 (see the
    /// property tests), cheap enough to rebuild on every CLI invocation.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds the ring for `nodes` with `vnodes` virtual nodes each.
    ///
    /// # Errors
    ///
    /// An empty node list, a duplicate node name, or `vnodes == 0`.
    pub fn new<I, S>(nodes: I, vnodes: usize) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        if nodes.is_empty() {
            return Err("a ring needs at least one node".to_owned());
        }
        if vnodes == 0 {
            return Err("a ring needs at least one virtual node per node".to_owned());
        }
        if u32::try_from(nodes.len()).is_err() {
            return Err("too many nodes".to_owned());
        }
        for (index, node) in nodes.iter().enumerate() {
            if node.is_empty() {
                return Err("node names must be non-empty".to_owned());
            }
            if nodes[..index].contains(node) {
                return Err(format!("duplicate node `{node}` in the ring"));
            }
        }
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (index, node) in nodes.iter().enumerate() {
            for vnode in 0..vnodes {
                // `\0` cannot occur in a host:port name, so the vnode label
                // is collision-free across nodes.
                let label = format!("{node}\u{0}{vnode}");
                points.push((mix64(fnv1a_64(label.as_bytes())), index as u32));
            }
        }
        points.sort_unstable();
        Ok(Self {
            nodes,
            points,
            vnodes,
        })
    }

    /// The node names, in configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Physical node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index of the first ring point at or after the mixed key position
    /// (wrapping).
    fn first_point(&self, key: u64) -> usize {
        let position = mix64(key);
        match self.points.binary_search(&(position, 0)) {
            Ok(index) => index,
            Err(index) => {
                if index == self.points.len() {
                    0
                } else {
                    index
                }
            }
        }
    }

    /// The index (into [`nodes`](Ring::nodes)) of the node owning `key`.
    pub fn node_for_key(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1 as usize
    }

    /// The node name owning the canonical design-point string.
    pub fn node_for_canonical(&self, canonical: &str) -> &str {
        &self.nodes[self.node_for_key(fnv1a_64(canonical.as_bytes()))]
    }

    /// The first `replicas` *distinct* node indices walking clockwise from
    /// `key`'s position: the owner first, then its successors.  Capped at the
    /// node count.
    pub fn owners(&self, key: u64, replicas: usize) -> Vec<usize> {
        let wanted = replicas.clamp(1, self.nodes.len());
        let mut owners = Vec::with_capacity(wanted);
        let start = self.first_point(key);
        for offset in 0..self.points.len() {
            let node = self.points[(start + offset) % self.points.len()].1 as usize;
            if !owners.contains(&node) {
                owners.push(node);
                if owners.len() == wanted {
                    break;
                }
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(names: &[&str]) -> Ring {
        Ring::new(names.iter().copied(), Ring::DEFAULT_VNODES).unwrap()
    }

    #[test]
    fn construction_rejects_bad_configs() {
        assert!(Ring::new(Vec::<String>::new(), 64).is_err());
        assert!(Ring::new(["a", "b"], 0).is_err());
        assert!(Ring::new(["a", "a"], 64).is_err());
        assert!(Ring::new(["a", ""], 64).is_err());
    }

    #[test]
    fn owner_is_the_first_entry_of_the_owner_list() {
        let ring = ring(&["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        for key in 0..1000u64 {
            let owners = ring.owners(key, 2);
            assert_eq!(owners[0], ring.node_for_key(key));
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
        }
    }

    #[test]
    fn replica_count_is_capped_at_the_node_count() {
        let ring = ring(&["a:1", "b:2"]);
        assert_eq!(ring.owners(42, 5).len(), 2);
        assert_eq!(ring.owners(42, 0).len(), 1);
    }

    #[test]
    fn single_node_rings_route_everything_to_it() {
        let ring = ring(&["only:1"]);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.node_for_key(key), 0);
        }
    }
}
