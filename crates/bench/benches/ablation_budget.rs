//! Ablation: register-budget sweep for every kernel of the paper suite.
//!
//! Shows where the three allocators diverge (tight budgets) and where they converge
//! (budgets large enough for full replacement of every profitable reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srra_bench::sweep::budget_sweep;
use srra_kernels::paper_suite;

fn bench_budget_sweep(c: &mut Criterion) {
    let suite = paper_suite();
    let budgets = [8u64, 16, 32, 64, 128, 256];
    let mut group = c.benchmark_group("ablation_budget");
    for spec in &suite {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.kernel.name()),
            &spec.kernel,
            |b, kernel| b.iter(|| budget_sweep(kernel, &budgets)),
        );
        for point in budget_sweep(&spec.kernel, &budgets) {
            println!(
                "ablation_budget: {} budget={} fr={} pr={} cpa={}",
                spec.kernel.name(),
                point.parameter,
                point.fr_ra_cycles,
                point.pr_ra_cycles,
                point.cpa_ra_cycles
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_budget_sweep);
criterion_main!(benches);
