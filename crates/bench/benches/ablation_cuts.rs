//! Ablation: CPA-RA cut-selection policy (min-registers vs max-benefit vs level cuts).
//!
//! DESIGN.md calls out the cut-selection rule as the central design choice of CPA-RA;
//! this bench compares the paper's min-register policy against a benefit-driven policy
//! and the cheap level-cut heuristic, reporting both runtime and resulting memory
//! cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srra_core::{
    critical_path_aware_with, memory_cost, CpaOptions, CutSelectionPolicy, MemoryCostModel,
};
use srra_kernels::paper_suite;
use srra_reuse::ReuseAnalysis;

fn bench_cut_policies(c: &mut Criterion) {
    let suite = paper_suite();
    let mut group = c.benchmark_group("ablation_cuts");
    let policies: [(&str, CpaOptions); 3] = [
        (
            "min_registers",
            CpaOptions {
                policy: CutSelectionPolicy::MinRegisters,
                ..CpaOptions::default()
            },
        ),
        (
            "max_benefit",
            CpaOptions {
                policy: CutSelectionPolicy::MaxBenefitPerRegister,
                ..CpaOptions::default()
            },
        ),
        (
            "level_cuts",
            CpaOptions {
                level_cuts_only: true,
                ..CpaOptions::default()
            },
        ),
    ];

    for spec in &suite {
        let analysis = ReuseAnalysis::of(&spec.kernel);
        for (name, options) in &policies {
            group.bench_with_input(
                BenchmarkId::new(spec.kernel.name(), name),
                options,
                |b, options| {
                    b.iter(|| {
                        critical_path_aware_with(
                            &spec.kernel,
                            &analysis,
                            spec.register_budget,
                            options,
                        )
                        .expect("paper suite fits its budget")
                    })
                },
            );
            let allocation = critical_path_aware_with(
                &spec.kernel,
                &analysis,
                spec.register_budget,
                options,
            )
            .expect("paper suite fits its budget");
            let cost = memory_cost(
                &spec.kernel,
                &analysis,
                &allocation,
                &MemoryCostModel::default(),
            );
            println!(
                "ablation_cuts: {} {} memory_cycles={} registers={}",
                spec.kernel.name(),
                name,
                cost.memory_cycles,
                allocation.total_registers()
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cut_policies);
criterion_main!(benches);
