//! Criterion benchmark regenerating Figure 2(c) (the running example).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srra_bench::evaluate_kernel;
use srra_bench::figure2::FIGURE2_BUDGET;
use srra_core::AllocatorKind;
use srra_ir::examples::paper_example;

fn bench_figure2(c: &mut Criterion) {
    let kernel = paper_example();
    let mut group = c.benchmark_group("figure2");
    for kind in AllocatorKind::paper_versions() {
        group.bench_with_input(
            BenchmarkId::new("running_example", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    evaluate_kernel(&kernel, kind, FIGURE2_BUDGET)
                        .expect("running example fits 64 registers")
                })
            },
        );
        let outcome = evaluate_kernel(&kernel, kind, FIGURE2_BUDGET)
            .expect("running example fits 64 registers");
        println!(
            "figure2: {} Tmem/outer={} distribution=[{}]",
            kind.label(),
            outcome.cost.memory_cycles_per_outer_iteration,
            outcome.allocation.distribution()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
