//! Ablation: RAM access latency sweep at the paper's 32-register budget.
//!
//! The paper assumes a single-cycle RAM access; slower memories widen the gap between
//! the allocators because every remaining access costs more.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srra_bench::sweep::ram_latency_sweep;
use srra_kernels::paper_suite;

fn bench_ram_latency(c: &mut Criterion) {
    let suite = paper_suite();
    let latencies = [1u64, 2, 4, 8];
    let mut group = c.benchmark_group("ablation_ram_latency");
    for spec in &suite {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.kernel.name()),
            &spec.kernel,
            |b, kernel| b.iter(|| ram_latency_sweep(kernel, spec.register_budget, &latencies)),
        );
        for point in ram_latency_sweep(&spec.kernel, spec.register_budget, &latencies) {
            println!(
                "ablation_ram_latency: {} latency={} fr={} pr={} cpa={}",
                spec.kernel.name(),
                point.parameter,
                point.fr_ra_cycles,
                point.pr_ra_cycles,
                point.cpa_ra_cycles
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ram_latency);
criterion_main!(benches);
