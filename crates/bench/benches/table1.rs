//! Criterion benchmark regenerating every Table 1 design point.
//!
//! One benchmark per (kernel, algorithm) pair measures the full pipeline — reuse
//! analysis, allocation, cost model and hardware-design estimation — and prints the
//! resulting cycle count so the table can be rebuilt from the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srra_bench::evaluate_kernel;
use srra_core::AllocatorKind;
use srra_kernels::paper_suite;

fn bench_table1(c: &mut Criterion) {
    let suite = paper_suite();
    let mut group = c.benchmark_group("table1");
    for spec in &suite {
        for kind in AllocatorKind::paper_versions() {
            let id = BenchmarkId::new(spec.kernel.name(), kind.version_name());
            group.bench_with_input(id, &kind, |b, &kind| {
                b.iter(|| {
                    evaluate_kernel(&spec.kernel, kind, spec.register_budget)
                        .expect("paper suite fits its budget")
                })
            });
            let outcome = evaluate_kernel(&spec.kernel, kind, spec.register_budget)
                .expect("paper suite fits its budget");
            println!(
                "table1: {} {} cycles={} time_us={:.1} registers={}",
                spec.kernel.name(),
                kind.version_name(),
                outcome.design.total_cycles,
                outcome.design.execution_time_us,
                outcome.allocation.total_registers()
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
