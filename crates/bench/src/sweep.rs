//! Parameter sweeps: register budget and RAM latency.
//!
//! These sweeps go beyond the paper's single 32-register data point and support the
//! ablation benchmarks: they show where the algorithms diverge and where they converge
//! (with an unlimited budget every algorithm fully replaces everything and the curves
//! meet).

use serde::{Deserialize, Serialize};
use srra_core::{allocate, memory_cost, AllocatorKind, MemoryCostModel};
use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

/// One point of a sweep: the memory cycles of each algorithm at one parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (register budget or RAM latency).
    pub parameter: u64,
    /// Memory cycles for FR-RA (`v1`).
    pub fr_ra_cycles: u64,
    /// Memory cycles for PR-RA (`v2`).
    pub pr_ra_cycles: u64,
    /// Memory cycles for CPA-RA (`v3`).
    pub cpa_ra_cycles: u64,
}

fn cycles_for(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    kind: AllocatorKind,
    budget: u64,
    model: &MemoryCostModel,
) -> Option<u64> {
    let allocation = allocate(kind, kernel, analysis, budget).ok()?;
    Some(memory_cost(kernel, analysis, &allocation, model).memory_cycles)
}

/// Sweeps the register budget for one kernel, reporting steady-state memory cycles.
///
/// Budgets smaller than the kernel's reference count are skipped.
pub fn budget_sweep(kernel: &Kernel, budgets: &[u64]) -> Vec<SweepPoint> {
    let analysis = ReuseAnalysis::of(kernel);
    let model = MemoryCostModel::default();
    budgets
        .iter()
        .filter_map(|&budget| {
            Some(SweepPoint {
                parameter: budget,
                fr_ra_cycles: cycles_for(kernel, &analysis, AllocatorKind::FullReuse, budget, &model)?,
                pr_ra_cycles: cycles_for(
                    kernel,
                    &analysis,
                    AllocatorKind::PartialReuse,
                    budget,
                    &model,
                )?,
                cpa_ra_cycles: cycles_for(
                    kernel,
                    &analysis,
                    AllocatorKind::CriticalPathAware,
                    budget,
                    &model,
                )?,
            })
        })
        .collect()
}

/// Sweeps the RAM access latency for one kernel at a fixed register budget.
pub fn ram_latency_sweep(kernel: &Kernel, budget: u64, latencies: &[u64]) -> Vec<SweepPoint> {
    let analysis = ReuseAnalysis::of(kernel);
    latencies
        .iter()
        .filter_map(|&latency| {
            let model = MemoryCostModel::default().with_ram_latency(latency);
            Some(SweepPoint {
                parameter: latency,
                fr_ra_cycles: cycles_for(kernel, &analysis, AllocatorKind::FullReuse, budget, &model)?,
                pr_ra_cycles: cycles_for(
                    kernel,
                    &analysis,
                    AllocatorKind::PartialReuse,
                    budget,
                    &model,
                )?,
                cpa_ra_cycles: cycles_for(
                    kernel,
                    &analysis,
                    AllocatorKind::CriticalPathAware,
                    budget,
                    &model,
                )?,
            })
        })
        .collect()
}

/// Renders a sweep as an aligned text table.
pub fn render_sweep(title: &str, parameter_name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14}\n",
        parameter_name, "FR-RA cycles", "PR-RA cycles", "CPA-RA cycles"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14}\n",
            p.parameter, p.fr_ra_cycles, p.pr_ra_cycles, p.cpa_ra_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn budget_sweep_shows_cpa_dominating_and_converging() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[8, 16, 32, 64, 128, 700]);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.cpa_ra_cycles <= p.pr_ra_cycles, "budget {}", p.parameter);
            assert!(p.pr_ra_cycles <= p.fr_ra_cycles, "budget {}", p.parameter);
        }
        // With the full 700-register budget every algorithm replaces everything that
        // has reuse and the three designs meet.
        let last = points.last().unwrap();
        assert_eq!(last.fr_ra_cycles, last.cpa_ra_cycles);
    }

    #[test]
    fn small_budgets_are_skipped() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[2, 64]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].parameter, 64);
    }

    #[test]
    fn ram_latency_scales_all_algorithms() {
        let kernel = paper_example();
        let points = ram_latency_sweep(&kernel, 64, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].fr_ra_cycles, 2 * points[0].fr_ra_cycles);
        assert_eq!(points[2].cpa_ra_cycles, 4 * points[0].cpa_ra_cycles);
    }

    #[test]
    fn rendering_lists_every_point() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[16, 64]);
        let text = render_sweep("budget sweep", "budget", &points);
        assert!(text.contains("16"));
        assert!(text.contains("64"));
        assert!(text.contains("CPA-RA cycles"));
    }
}
