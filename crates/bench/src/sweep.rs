//! Parameter sweeps: register budget and RAM latency.
//!
//! These sweeps go beyond the paper's single 32-register data point and support the
//! ablation benchmarks: they show where the algorithms diverge and where they converge
//! (with an unlimited budget every algorithm fully replaces everything and the curves
//! meet).
//!
//! Since the `srra-explore` engine landed, every sweep is a thin shim over a
//! [`DesignSpace`] exploration: points are evaluated in parallel and deduplicated
//! through a [`ResultStore`], so driving several sweeps through one shared store (or a
//! persistent [`srra_explore::JsonlStore`]) never re-evaluates a design point.  The
//! reported `*_cycles` are the steady-state memory cycles of the cost model at the
//! swept RAM latency — numerically identical to the pre-engine implementation.

use serde::{Deserialize, Serialize};
use srra_core::AllocatorKind;
use srra_explore::{DesignSpace, Explorer, MemoryStore, PointRecord, ResultStore};
use srra_ir::Kernel;

/// One point of a sweep: the memory cycles of each algorithm at one parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (register budget or RAM latency).
    pub parameter: u64,
    /// Memory cycles for FR-RA (`v1`).
    pub fr_ra_cycles: u64,
    /// Memory cycles for PR-RA (`v2`).
    pub pr_ra_cycles: u64,
    /// Memory cycles for CPA-RA (`v3`).
    pub cpa_ra_cycles: u64,
}

fn cycles_of(
    records: &[PointRecord],
    kind: AllocatorKind,
    budget: u64,
    latency: u64,
) -> Option<&PointRecord> {
    records
        .iter()
        .find(|r| r.algorithm == kind.label() && r.budget == budget && r.ram_latency == latency)
        .filter(|r| r.feasible)
}

fn sweep_point(
    records: &[PointRecord],
    parameter: u64,
    budget: u64,
    latency: u64,
) -> Option<SweepPoint> {
    Some(SweepPoint {
        parameter,
        fr_ra_cycles: cycles_of(records, AllocatorKind::FullReuse, budget, latency)?.memory_cycles,
        pr_ra_cycles: cycles_of(records, AllocatorKind::PartialReuse, budget, latency)?
            .memory_cycles,
        cpa_ra_cycles: cycles_of(records, AllocatorKind::CriticalPathAware, budget, latency)?
            .memory_cycles,
    })
}

/// Sweeps the register budget for one kernel, reporting steady-state memory cycles.
///
/// Budgets smaller than the kernel's reference count are skipped.
pub fn budget_sweep(kernel: &Kernel, budgets: &[u64]) -> Vec<SweepPoint> {
    budget_sweep_cached(kernel, budgets, &mut MemoryStore::new())
        .expect("in-memory exploration cannot fail")
}

/// [`budget_sweep`] against a caller-provided result store: design points already in
/// the store are answered without re-evaluation, and fresh points are written back.
///
/// # Errors
///
/// Propagates the store's error type (I/O for persistent stores).
pub fn budget_sweep_cached<S: ResultStore>(
    kernel: &Kernel,
    budgets: &[u64],
    store: &mut S,
) -> Result<Vec<SweepPoint>, S::Error> {
    let space = DesignSpace::new()
        .with_kernel(kernel.clone())
        .with_budgets(budgets)
        .with_ram_latencies(&[1]);
    let run = Explorer::default().explore(&space, store)?;
    Ok(budgets
        .iter()
        .filter_map(|&budget| sweep_point(&run.records, budget, budget, 1))
        .collect())
}

/// Sweeps the RAM access latency for one kernel at a fixed register budget.
pub fn ram_latency_sweep(kernel: &Kernel, budget: u64, latencies: &[u64]) -> Vec<SweepPoint> {
    ram_latency_sweep_cached(kernel, budget, latencies, &mut MemoryStore::new())
        .expect("in-memory exploration cannot fail")
}

/// [`ram_latency_sweep`] against a caller-provided result store.
///
/// # Errors
///
/// Propagates the store's error type (I/O for persistent stores).
pub fn ram_latency_sweep_cached<S: ResultStore>(
    kernel: &Kernel,
    budget: u64,
    latencies: &[u64],
    store: &mut S,
) -> Result<Vec<SweepPoint>, S::Error> {
    let space = DesignSpace::new()
        .with_kernel(kernel.clone())
        .with_budgets(&[budget])
        .with_ram_latencies(latencies);
    let run = Explorer::default().explore(&space, store)?;
    Ok(latencies
        .iter()
        .filter_map(|&latency| sweep_point(&run.records, latency, budget, latency))
        .collect())
}

/// Renders a sweep as an aligned text table.
pub fn render_sweep(title: &str, parameter_name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14}\n",
        parameter_name, "FR-RA cycles", "PR-RA cycles", "CPA-RA cycles"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14}\n",
            p.parameter, p.fr_ra_cycles, p.pr_ra_cycles, p.cpa_ra_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn budget_sweep_shows_cpa_dominating_and_converging() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[8, 16, 32, 64, 128, 700]);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.cpa_ra_cycles <= p.pr_ra_cycles, "budget {}", p.parameter);
            assert!(p.pr_ra_cycles <= p.fr_ra_cycles, "budget {}", p.parameter);
        }
        // With the full 700-register budget every algorithm replaces everything that
        // has reuse and the three designs meet.
        let last = points.last().unwrap();
        assert_eq!(last.fr_ra_cycles, last.cpa_ra_cycles);
    }

    #[test]
    fn small_budgets_are_skipped() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[2, 64]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].parameter, 64);
    }

    #[test]
    fn ram_latency_scales_all_algorithms() {
        let kernel = paper_example();
        let points = ram_latency_sweep(&kernel, 64, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].fr_ra_cycles, 2 * points[0].fr_ra_cycles);
        assert_eq!(points[2].cpa_ra_cycles, 4 * points[0].cpa_ra_cycles);
    }

    #[test]
    fn rendering_lists_every_point() {
        let kernel = paper_example();
        let points = budget_sweep(&kernel, &[16, 64]);
        let text = render_sweep("budget sweep", "budget", &points);
        assert!(text.contains("16"));
        assert!(text.contains("64"));
        assert!(text.contains("CPA-RA cycles"));
    }

    #[test]
    fn shared_store_deduplicates_across_sweeps() {
        let kernel = paper_example();
        let mut store = MemoryStore::new();
        let cold = budget_sweep_cached(&kernel, &[16, 64], &mut store).unwrap();
        // The second sweep overlaps the first on every point and adds one budget;
        // the overlap is answered from the store and the results agree exactly.
        let warm = budget_sweep_cached(&kernel, &[16, 64, 128], &mut store).unwrap();
        assert_eq!(&warm[..2], &cold[..]);
        // A latency sweep at budget 64 reuses the (64, latency 1) point.
        let latencies = ram_latency_sweep_cached(&kernel, 64, &[1, 4], &mut store).unwrap();
        assert_eq!(latencies[0].cpa_ra_cycles, cold[1].cpa_ra_cycles);
    }
}
