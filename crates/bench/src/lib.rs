//! Evaluation harness reproducing the paper's experimental results.
//!
//! The paper reports two result sets:
//!
//! * **Figure 2(c)** — the running example's register distributions and memory cycles
//!   for FR-RA, PR-RA and CPA-RA with the same register budget ([`figure2`]),
//! * **Table 1** — six kernels × three design versions (`v1` = FR-RA, `v2` = PR-RA,
//!   `v3` = CPA-RA) with register distribution, execution cycles, clock period,
//!   wall-clock time, slices and BlockRAMs ([`table1`]), plus the aggregate
//!   improvement percentages quoted in the text ([`Table1Summary`]).
//!
//! The binaries `table1`, `figure2` and `sweep` print these reproductions; the Criterion
//! benches under `benches/` measure the allocator runtimes and run the ablation
//! studies (cut-selection policy, register budget, RAM latency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure2;
pub mod report;
pub mod sweep;
pub mod table1;

pub use figure2::{figure2, render_figure2, Figure2Row};
pub use report::{figure2_csv, sweep_csv, table1_csv};
pub use sweep::{
    budget_sweep, budget_sweep_cached, ram_latency_sweep, ram_latency_sweep_cached, SweepPoint,
};
pub use table1::{render_table1, summarize, table1, Table1Row, Table1Summary};

use srra_core::{
    allocate, memory_cost, AllocError, AllocatorKind, MemoryCostModel, MemoryCostReport,
    RegisterAllocation,
};
use srra_fpga::{DeviceModel, EvaluationOptions, HardwareDesign};
use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

/// Everything the harness derives for one (kernel, algorithm, budget) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutcome {
    /// The register allocation computed by the algorithm.
    pub allocation: RegisterAllocation,
    /// The analytic memory-cycle report.
    pub cost: MemoryCostReport,
    /// The full hardware design-point estimate.
    pub design: HardwareDesign,
}

/// Runs the complete pipeline (reuse analysis → allocation → cost model → hardware
/// design estimate) for one kernel with default models.
///
/// # Errors
///
/// Propagates [`AllocError`] from the allocation algorithm (empty kernel or a budget
/// smaller than the number of references).
pub fn evaluate_kernel(
    kernel: &Kernel,
    kind: AllocatorKind,
    budget: u64,
) -> Result<KernelOutcome, AllocError> {
    let analysis = ReuseAnalysis::of(kernel);
    let allocation = allocate(kind, kernel, &analysis, budget)?;
    let cost = memory_cost(kernel, &analysis, &allocation, &MemoryCostModel::default());
    let design = HardwareDesign::evaluate(
        kernel,
        &analysis,
        &allocation,
        &DeviceModel::xcv1000(),
        &EvaluationOptions::default(),
    );
    Ok(KernelOutcome {
        allocation,
        cost,
        design,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn evaluate_kernel_runs_the_whole_pipeline() {
        let kernel = paper_example();
        let outcome =
            evaluate_kernel(&kernel, AllocatorKind::CriticalPathAware, 64).expect("pipeline runs");
        assert_eq!(outcome.allocation.total_registers(), 64);
        assert_eq!(outcome.cost.memory_cycles_per_outer_iteration, 1184);
        assert!(outcome.design.total_cycles > 0);
    }

    #[test]
    fn evaluate_kernel_propagates_budget_errors() {
        let kernel = paper_example();
        assert!(evaluate_kernel(&kernel, AllocatorKind::FullReuse, 1).is_err());
    }
}
