//! Evaluation harness reproducing the paper's experimental results.
//!
//! The paper reports two result sets:
//!
//! * **Figure 2(c)** — the running example's register distributions and memory cycles
//!   for FR-RA, PR-RA and CPA-RA with the same register budget ([`figure2()`]),
//! * **Table 1** — six kernels × three design versions (`v1` = FR-RA, `v2` = PR-RA,
//!   `v3` = CPA-RA) with register distribution, execution cycles, clock period,
//!   wall-clock time, slices and BlockRAMs ([`table1()`]), plus the aggregate
//!   improvement percentages quoted in the text ([`Table1Summary`]).
//!
//! The binaries `table1`, `figure2` and `sweep` print these reproductions; the Criterion
//! benches under `benches/` measure the allocator runtimes and run the ablation
//! studies (cut-selection policy, register budget, RAM latency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure2;
pub mod report;
pub mod sweep;
pub mod table1;

pub use figure2::{figure2, render_figure2, Figure2Row};
pub use report::{figure2_csv, sweep_csv, table1_csv};
pub use sweep::{
    budget_sweep, budget_sweep_cached, ram_latency_sweep, ram_latency_sweep_cached, SweepPoint,
};
pub use table1::{render_table1, summarize, table1, table1_for, Table1Row, Table1Summary};

use srra_core::{
    memory_cost, AllocError, AllocatorKind, AllocatorRef, CompiledKernel, MemoryCostModel,
    MemoryCostReport, RegisterAllocation,
};
use srra_fpga::{DeviceModel, EvaluationOptions, HardwareDesign};
use srra_ir::Kernel;

/// Everything the harness derives for one (kernel, algorithm, budget) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutcome {
    /// The register allocation computed by the algorithm.
    pub allocation: RegisterAllocation,
    /// The analytic memory-cycle report.
    pub cost: MemoryCostReport,
    /// The full hardware design-point estimate.
    pub design: HardwareDesign,
}

/// Runs the allocation → cost model → hardware design estimate pipeline against
/// a shared [`CompiledKernel`] context with default models.
///
/// The context's memoized reuse analysis is computed on first use, so
/// evaluating several (strategy, budget) pairs of one kernel — as
/// [`table1()`] and [`figure2()`] do — analyses the kernel exactly once.
///
/// # Errors
///
/// Propagates [`AllocError`] from the allocation strategy (empty kernel or a
/// budget smaller than the number of references).
pub fn evaluate_compiled(
    kernel: &CompiledKernel,
    allocator: AllocatorRef,
    budget: u64,
) -> Result<KernelOutcome, AllocError> {
    let allocation = allocator.allocate(kernel, budget)?;
    let cost = memory_cost(
        kernel.kernel(),
        kernel.analysis(),
        &allocation,
        &MemoryCostModel::default(),
    );
    let design = HardwareDesign::evaluate(
        kernel.kernel(),
        kernel.analysis(),
        &allocation,
        &DeviceModel::xcv1000(),
        &EvaluationOptions::default(),
    );
    Ok(KernelOutcome {
        allocation,
        cost,
        design,
    })
}

/// Runs the complete pipeline (reuse analysis → allocation → cost model → hardware
/// design estimate) for one kernel with default models.
///
/// Compatibility shim over [`evaluate_compiled`] for one-shot callers; it
/// builds a throwaway [`CompiledKernel`], so every call re-analyses the
/// kernel.  Callers evaluating several strategies or budgets should build the
/// context once and use [`evaluate_compiled`].
///
/// # Errors
///
/// Propagates [`AllocError`] from the allocation algorithm (empty kernel or a budget
/// smaller than the number of references).
pub fn evaluate_kernel(
    kernel: &Kernel,
    kind: AllocatorKind,
    budget: u64,
) -> Result<KernelOutcome, AllocError> {
    evaluate_compiled(&CompiledKernel::new(kernel.clone()), kind.into(), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn evaluate_kernel_runs_the_whole_pipeline() {
        let kernel = paper_example();
        let outcome =
            evaluate_kernel(&kernel, AllocatorKind::CriticalPathAware, 64).expect("pipeline runs");
        assert_eq!(outcome.allocation.total_registers(), 64);
        assert_eq!(outcome.cost.memory_cycles_per_outer_iteration, 1184);
        assert!(outcome.design.total_cycles > 0);
    }

    #[test]
    fn evaluate_kernel_propagates_budget_errors() {
        let kernel = paper_example();
        assert!(evaluate_kernel(&kernel, AllocatorKind::FullReuse, 1).is_err());
    }
}
