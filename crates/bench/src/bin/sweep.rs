//! Prints register-budget and RAM-latency sweeps for a chosen kernel.
//!
//! Usage:
//!
//! ```text
//! cargo run -p srra-bench --bin sweep [-- <kernel>]
//! ```
//!
//! `<kernel>` is one of `fir`, `dec_fir`, `mat`, `imi`, `pat`, `bic` or `example`
//! (default: `example`, the paper's running example).

use srra_bench::sweep::{budget_sweep_cached, ram_latency_sweep_cached, render_sweep};
use srra_explore::MemoryStore;
use srra_ir::examples::paper_example;
use srra_kernels::paper_suite;

fn main() {
    let requested = std::env::args().nth(1).unwrap_or_else(|| "example".into());
    let kernel = if requested == "example" {
        paper_example()
    } else {
        match paper_suite()
            .into_iter()
            .find(|spec| spec.kernel.name() == requested)
        {
            Some(spec) => spec.kernel,
            None => {
                eprintln!(
                    "unknown kernel `{requested}`; expected example, fir, dec_fir, mat, imi, pat or bic"
                );
                std::process::exit(1);
            }
        }
    };

    let reference_count = kernel.reference_table().len() as u64;
    let budgets: Vec<u64> = [8, 16, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|b| *b >= reference_count)
        .collect();
    // Both sweeps share one result store, so overlapping design points (the
    // latency-1 column at the shared budget) are evaluated only once.
    let mut store = MemoryStore::new();
    println!(
        "{}",
        render_sweep(
            &format!("register-budget sweep — {}", kernel.name()),
            "budget",
            &budget_sweep_cached(&kernel, &budgets, &mut store)
                .expect("in-memory exploration cannot fail"),
        )
    );
    println!(
        "{}",
        render_sweep(
            &format!("RAM-latency sweep — {} (32 registers)", kernel.name()),
            "latency",
            &ram_latency_sweep_cached(
                &kernel,
                32.max(reference_count),
                &[1, 2, 3, 4, 6, 8],
                &mut store,
            )
            .expect("in-memory exploration cannot fail"),
        )
    );
}
