//! Multi-node cluster benchmark behind `BENCH_5.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p srra-bench --bin cluster_bench [-- <clients>]
//! ```
//!
//! Starts 1, 2 and 4 in-process `srra-serve` nodes and drives them through
//! consistent-hash-routed `ClusterClient`s over real loopback TCP, on the
//! same 240-point grid as BENCH_2/BENCH_4.  Per node count, three phases:
//!
//! 1. **cold explore** — empty shards; the ring sends every canonical to one
//!    owner, so each point is evaluated exactly once *across the whole
//!    cluster* (asserted via aggregated stats);
//! 2. **warm mget** — routed batched lookups, the cluster-serving hot path;
//! 3. **warm explore** — routed batched explore, answered entirely from the
//!    shards.
//!
//! A final **failover** scenario runs 2 nodes with `replicas = 2`: populate,
//! kill one node mid-run, then read the full grid back — every key must
//! still answer (from the surviving replica).  The single-node section
//! doubles as the comparison point against BENCH_4's `warm_mget` (same
//! batch size, same grid, no ring in the loop).
//!
//! Every phase walks the full grid once per client, rotated by client index.
//! Reports per-phase throughput (grid points answered per second) and
//! p50/p99 per-point latency as JSON on stdout; per-point latency of a
//! batched phase is the batch round-trip time divided by its size.

use std::time::Instant;

use srra_cluster::{ClusterClient, ClusterConfig};
use srra_serve::{Client, PointOutcome, QueryPoint, Server, ServerConfig};

/// Canonicals per mget / points per explore batch (as serve_bench).
const BATCH: usize = 48;

/// The BENCH_2 grid: 6 kernels x 5 algorithms x 4 budgets x 2 latencies.
fn grid() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
        for algo in ["fr", "pr", "cpa", "ks", "greedy"] {
            for budget in [8, 16, 32, 64] {
                for latency in [1, 2] {
                    let mut point = QueryPoint::new(kernel, algo, budget);
                    point.ram_latency = latency;
                    points.push(point);
                }
            }
        }
    }
    points
}

/// The per-client rotation of the grid, so concurrent clients hammer
/// different owners at any instant.
fn rotation(points: &[QueryPoint], index: usize, clients: usize) -> Vec<QueryPoint> {
    let offset = index * points.len() / clients;
    (0..points.len())
        .map(|i| points[(i + offset) % points.len()].clone())
        .collect()
}

/// Starts `count` in-process nodes; returns addresses and join handles.
fn start_nodes(
    tag: &str,
    count: usize,
    workers: usize,
) -> (
    Vec<String>,
    Vec<std::thread::JoinHandle<()>>,
    std::path::PathBuf,
) {
    let base =
        std::env::temp_dir().join(format!("srra-cluster-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for index in 0..count {
        let server = Server::bind(&ServerConfig {
            workers,
            ..ServerConfig::ephemeral(base.join(format!("node-{index}")))
        })
        .expect("node binds");
        addrs.push(server.local_addr().to_string());
        handles.push(std::thread::spawn(move || {
            server.run().expect("node runs");
        }));
    }
    (addrs, handles, base)
}

/// Fans `clients` workers out, each with its own `ClusterClient`, runs
/// `work` per client over its rotated grid, and returns (wall seconds,
/// sorted per-point latencies in µs).
fn fan_out<F>(
    config: &ClusterConfig,
    clients: usize,
    points: &[QueryPoint],
    work: F,
) -> (f64, Vec<u64>)
where
    F: Fn(&mut ClusterClient, Vec<QueryPoint>) -> Vec<u64> + Sync,
{
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                let local = rotation(points, index, clients);
                scope.spawn(move || {
                    let mut cluster = ClusterClient::connect(config).expect("cluster connects");
                    work(&mut cluster, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (wall, latencies)
}

/// Routed batched explore over the grid; panics on any per-point failure.
fn run_explore(config: &ClusterConfig, clients: usize, points: &[QueryPoint]) -> (f64, Vec<u64>) {
    fan_out(config, clients, points, |cluster, local| {
        let mut latencies = Vec::with_capacity(local.len());
        for window in local.chunks(BATCH) {
            let sent = Instant::now();
            let reply = cluster.explore(window).expect("explore succeeds");
            let per_point = (sent.elapsed().as_micros() as u64) / window.len() as u64;
            assert!(
                reply
                    .outcomes
                    .iter()
                    .all(|outcome| matches!(outcome, PointOutcome::Answered { .. })),
                "grid resolves"
            );
            latencies.extend(std::iter::repeat(per_point).take(window.len()));
        }
        latencies
    })
}

/// Routed batched lookups over the warm grid; panics on a miss.
fn run_mget(config: &ClusterConfig, clients: usize, points: &[QueryPoint]) -> (f64, Vec<u64>) {
    fan_out(config, clients, points, |cluster, local| {
        let mut latencies = Vec::with_capacity(local.len());
        for window in local.chunks(BATCH) {
            let canonicals: Vec<String> = window
                .iter()
                .map(|point| srra_serve::canonical_for(point).expect("grid resolves"))
                .collect();
            let sent = Instant::now();
            let records = cluster.mget(&canonicals).expect("mget succeeds");
            let per_point = (sent.elapsed().as_micros() as u64) / window.len() as u64;
            assert!(records.iter().all(Option::is_some), "warm cluster hits");
            latencies.extend(std::iter::repeat(per_point).take(window.len()));
        }
        latencies
    })
}

fn percentile(sorted: &[u64], fraction: f64) -> u64 {
    let index = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[index]
}

fn phase_json(name: &str, requests: usize, wall: f64, latencies: &[u64]) -> String {
    format!(
        "      \"{name}\": {{\"requests\":{requests},\"wall_ms\":{:.1},\"throughput_rps\":{:.0},\"p50_us\":{},\"p99_us\":{}}}",
        wall * 1e3,
        requests as f64 / wall,
        percentile(latencies, 0.50),
        percentile(latencies, 0.99)
    )
}

/// Runs cold explore / warm mget / warm explore against `node_count` nodes;
/// returns the rendered JSON section.
fn bench_nodes(node_count: usize, clients: usize, points: &[QueryPoint]) -> String {
    let (addrs, handles, dir) = start_nodes(&format!("n{node_count}"), node_count, clients);
    let config = ClusterConfig::new(addrs.clone());
    let requests = clients * points.len();

    let phases = [
        ("cold_explore", run_explore(&config, clients, points)),
        ("warm_mget", run_mget(&config, clients, points)),
        ("warm_explore", run_explore(&config, clients, points)),
    ];

    // Exactly-once across the cluster: the ring gave every canonical one
    // owner, so the 240 distinct points were evaluated 240 times in total,
    // no matter how many clients raced.
    let mut probe = ClusterClient::connect(&config).expect("cluster connects");
    let stats = probe.stats();
    assert_eq!(stats.nodes_up(), node_count);
    assert_eq!(stats.total_evaluated() as usize, points.len());
    assert_eq!(stats.total_records(), points.len());
    let per_node: Vec<String> = stats
        .nodes
        .iter()
        .map(|node| {
            let server = node.stats.as_ref().expect("node answered stats");
            format!(
                "{{\"requests\":{},\"evaluated\":{},\"records\":{}}}",
                server.requests,
                server.evaluated,
                server.records()
            )
        })
        .collect();
    probe.shutdown_all();
    for handle in handles {
        handle.join().expect("node thread");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");

    let mut out = format!("    \"nodes_{node_count}\": {{\n");
    out.push_str("      \"phases\": {\n");
    for (index, (name, (wall, latencies))) in phases.iter().enumerate() {
        let comma = if index + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!(
            "  {}{comma}\n",
            phase_json(name, requests, *wall, latencies)
        ));
    }
    out.push_str("      },\n");
    out.push_str(&format!(
        "      \"per_node\": [{}]\n    }}",
        per_node.join(",")
    ));
    out
}

/// The failover scenario: 2 nodes, replication factor 2, one node killed
/// after the populate pass; the full grid must stay readable.
fn bench_failover(clients: usize, points: &[QueryPoint]) -> String {
    let (addrs, mut handles, dir) = start_nodes("failover", 2, clients);
    let config = ClusterConfig::new(addrs.clone()).with_replicas(2);
    let requests = clients * points.len();

    let (populate_wall, populate_latencies) = run_explore(&config, clients, points);

    // Kill node 0 mid-run: the next reads hit its stale keep-alive sockets
    // and fail over to the surviving replica.
    Client::new(addrs[0].clone()).shutdown().expect("shutdown");
    handles.remove(0).join().expect("node thread");
    let (failover_wall, failover_latencies) = run_mget(&config, clients, points);

    let mut probe = ClusterClient::connect(&config).expect("cluster connects");
    let stats = probe.stats();
    assert_eq!(stats.nodes_up(), 1);
    assert_eq!(
        stats.total_records(),
        points.len(),
        "the survivor holds a replica of every record"
    );
    probe.shutdown_all();
    for handle in handles {
        handle.join().expect("node thread");
    }
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");

    let mut out = String::from("    \"failover_2_nodes_replicas_2\": {\n");
    out.push_str("      \"phases\": {\n");
    out.push_str(&format!(
        "  {},\n",
        phase_json(
            "cold_explore_replicated",
            requests,
            populate_wall,
            &populate_latencies
        )
    ));
    out.push_str(&format!(
        "  {}\n",
        phase_json(
            "warm_mget_one_node_killed",
            requests,
            failover_wall,
            &failover_latencies
        )
    ));
    out.push_str("      },\n");
    out.push_str("      \"all_reads_answered\": true\n    }");
    out
}

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .map(|raw| raw.parse().expect("client count is a number"))
        .unwrap_or(4);
    let points = grid();

    let sections = [
        bench_nodes(1, clients, &points),
        bench_nodes(2, clients, &points),
        bench_nodes(4, clients, &points),
        bench_failover(clients, &points),
    ];

    println!("{{");
    println!(
        "  \"grid_points\": {}, \"clients\": {clients}, \"shards_per_node\": 4, \"batch\": {BATCH},",
        points.len()
    );
    println!("  \"baseline\": \"BENCH_4.json warm_mget is the single-node, no-ring reference\",");
    println!("  \"clusters\": {{");
    for (index, section) in sections.iter().enumerate() {
        let comma = if index + 1 < sections.len() { "," } else { "" };
        println!("{section}{comma}");
    }
    println!("  }}");
    println!("}}");
}
