//! Multi-client query-serving benchmark behind `BENCH_3.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p srra-bench --bin serve_bench [-- <clients>]
//! ```
//!
//! Starts an in-process `srra-serve` server over a scratch shard directory
//! and drives it with concurrent clients over real loopback TCP, three
//! phases over the same 240-point grid as BENCH_2:
//!
//! 1. **cold explore** — empty shards, every point evaluated on demand
//!    (exactly once across all racing clients);
//! 2. **warm explore** — identical workload, answered entirely from shards;
//! 3. **warm get** — pure canonical-string lookups.
//!
//! Each client issues single-point requests (one connection per request, as
//! `srra query` does) in a per-client rotation of the grid, so concurrent
//! clients hammer different shards at any instant.  Reports per-phase
//! throughput and p50/p99 request latency as JSON on stdout.

use std::time::Instant;

use srra_serve::{Client, QueryPoint, Server, ServerConfig};

/// The BENCH_2 grid: 6 kernels x 5 algorithms x 4 budgets x 2 latencies.
fn grid() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
        for algo in ["fr", "pr", "cpa", "ks", "greedy"] {
            for budget in [8, 16, 32, 64] {
                for latency in [1, 2] {
                    let mut point = QueryPoint::new(kernel, algo, budget);
                    point.ram_latency = latency;
                    points.push(point);
                }
            }
        }
    }
    points
}

/// One phase: every client walks the full grid (rotated by client index so
/// the instantaneous load spreads over the shards) and records per-request
/// latencies.  Returns (wall seconds, sorted latencies in microseconds).
fn run_phase(addr: &str, clients: usize, points: &[QueryPoint], get: bool) -> (f64, Vec<u64>) {
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                scope.spawn(move || {
                    let client = Client::new(addr.to_owned());
                    let offset = index * points.len() / clients;
                    let mut local = Vec::with_capacity(points.len());
                    for i in 0..points.len() {
                        let point = &points[(i + offset) % points.len()];
                        let sent = Instant::now();
                        if get {
                            let canonical =
                                srra_serve::canonical_for(point).expect("grid resolves");
                            client
                                .get(&canonical)
                                .expect("get succeeds")
                                .expect("warm store hits");
                        } else {
                            let reply = client
                                .explore(std::slice::from_ref(point))
                                .expect("explore succeeds");
                            assert_eq!(reply.records.len(), 1);
                        }
                        local.push(sent.elapsed().as_micros() as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (wall, latencies)
}

fn percentile(sorted: &[u64], fraction: f64) -> u64 {
    let index = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[index]
}

fn phase_json(name: &str, requests: usize, wall: f64, latencies: &[u64]) -> String {
    format!(
        "    \"{name}\": {{\"requests\":{requests},\"wall_ms\":{:.1},\"throughput_rps\":{:.0},\"p50_us\":{},\"p99_us\":{}}}",
        wall * 1e3,
        requests as f64 / wall,
        percentile(latencies, 0.50),
        percentile(latencies, 0.99)
    )
}

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .map(|raw| raw.parse().expect("client count is a number"))
        .unwrap_or(4);
    let dir = std::env::temp_dir().join(format!("srra-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: dir.clone(),
        shards: 4,
        workers: clients,
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let points = grid();
    let requests = clients * points.len();
    let (cold_wall, cold_lat) = run_phase(&addr, clients, &points, false);
    let (warm_wall, warm_lat) = run_phase(&addr, clients, &points, false);
    let (get_wall, get_lat) = run_phase(&addr, clients, &points, true);

    let client = Client::new(addr);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.evaluated as usize,
        points.len(),
        "every distinct point is evaluated exactly once, in the cold phase"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");

    println!("{{");
    println!(
        "  \"grid_points\": {}, \"clients\": {clients}, \"shards\": 4,",
        points.len()
    );
    println!("  \"phases\": {{");
    println!(
        "{},",
        phase_json("cold_explore", requests, cold_wall, &cold_lat)
    );
    println!(
        "{},",
        phase_json("warm_explore", requests, warm_wall, &warm_lat)
    );
    println!("{}", phase_json("warm_get", requests, get_wall, &get_lat));
    println!("  }},");
    println!(
        "  \"server_totals\": {{\"requests\":{},\"hits\":{},\"evaluated\":{},\"shard_records\":{:?}}}",
        stats.requests, stats.hits, stats.evaluated, stats.shard_records
    );
    println!("}}");
}
