//! Multi-client query-serving benchmark behind `BENCH_3.json` / `BENCH_4.json`
//! / `BENCH_7.json` / `BENCH_9.json`.
//!
//! Since BENCH_9 the benched server runs with the metrics sampler live at
//! its default 1 s cadence (`sample_interval_ms: 1_000`), so every number
//! here includes the cost of the time-series layer — the acceptance bar is
//! that it costs the hot path nothing.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p srra-bench --bin serve_bench [-- <clients>]
//! ```
//!
//! Runs the whole suite once per wire codec — JSON lines and the
//! length-prefixed binary codec — each against its own in-process
//! `srra-serve` server over a fresh scratch shard directory, so both codecs
//! get a true cold phase.  Per codec, seven phases over the same 240-point
//! grid as BENCH_2, driven by concurrent clients over real loopback TCP:
//!
//! 1. **cold explore** — connection-per-request, empty shards, every point
//!    evaluated on demand (exactly once across all racing clients);
//! 2. **warm explore** — connection-per-request, answered entirely from
//!    shards;
//! 3. **warm get** — connection-per-request canonical-string lookups (the
//!    BENCH_3 baseline shape);
//! 4. **warm get keep-alive** — one persistent connection per client,
//!    sequential request/response rounds (isolates the connection setup
//!    cost);
//! 5. **warm get pipelined** — one persistent connection per client, request
//!    frames written in windows before reading any reply;
//! 6. **warm mget** — batched lookups, many canonicals per wire op;
//! 7. **warm mexplore** — batched explore, many points per wire op.
//!
//! Every phase walks the full grid once per client, rotated by client index
//! so concurrent clients hammer different shards at any instant.  Reports
//! per-codec, per-phase throughput (grid points answered per second) and
//! p50/p99 per-point latency as JSON on stdout; for the pipelined/batched
//! phases the per-point latency is the window/batch round-trip time divided
//! by its size.

use std::time::Instant;

use srra_serve::{
    Client, Connection, PointOutcome, QueryPoint, Request, Response, Server, ServerConfig,
    ServerStats,
};

/// Requests per pipeline window / canonicals per mget / points per mexplore.
const BATCH: usize = 48;

/// The BENCH_2 grid: 6 kernels x 5 algorithms x 4 budgets x 2 latencies.
fn grid() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
        for algo in ["fr", "pr", "cpa", "ks", "greedy"] {
            for budget in [8, 16, 32, 64] {
                for latency in [1, 2] {
                    let mut point = QueryPoint::new(kernel, algo, budget);
                    point.ram_latency = latency;
                    points.push(point);
                }
            }
        }
    }
    points
}

/// The per-client rotation of the grid: client `index` starts `offset` points
/// in, so the instantaneous load spreads over the shards.
fn rotation(points: &[QueryPoint], index: usize, clients: usize) -> Vec<QueryPoint> {
    let offset = index * points.len() / clients;
    (0..points.len())
        .map(|i| points[(i + offset) % points.len()].clone())
        .collect()
}

/// Dials one keep-alive connection speaking the suite's codec.
fn dial(addr: &str, binary: bool) -> Connection {
    if binary {
        Connection::connect_binary(addr).expect("connects")
    } else {
        Connection::connect(addr).expect("connects")
    }
}

/// A connection-per-request client speaking the suite's codec.
fn one_shot_client(addr: &str, binary: bool) -> Client {
    if binary {
        Client::new_binary(addr.to_owned())
    } else {
        Client::new(addr.to_owned())
    }
}

/// Fans `clients` workers out, runs `work` in each (receiving its rotated
/// grid), and returns (wall seconds, sorted per-point latencies in µs).
fn fan_out<F>(clients: usize, points: &[QueryPoint], work: F) -> (f64, Vec<u64>)
where
    F: Fn(Vec<QueryPoint>) -> Vec<u64> + Sync,
{
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                let local = rotation(points, index, clients);
                scope.spawn(move || work(local))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (wall, latencies)
}

/// Connection-per-request phase (the BENCH_3 baseline shape): one fresh
/// socket per request, `get` or single-point `explore`.
fn run_oneshot(
    addr: &str,
    clients: usize,
    points: &[QueryPoint],
    get: bool,
    binary: bool,
) -> (f64, Vec<u64>) {
    fan_out(clients, points, |local| {
        let client = one_shot_client(addr, binary);
        let mut latencies = Vec::with_capacity(local.len());
        for point in &local {
            let sent = Instant::now();
            if get {
                let canonical = srra_serve::canonical_for(point).expect("grid resolves");
                client
                    .get(&canonical)
                    .expect("get succeeds")
                    .expect("warm store hits");
            } else {
                let reply = client
                    .explore(std::slice::from_ref(point))
                    .expect("explore succeeds");
                assert_eq!(reply.records.len(), 1);
            }
            latencies.push(sent.elapsed().as_micros() as u64);
        }
        latencies
    })
}

/// Keep-alive phase: one persistent connection per client, sequential `get`
/// round trips — pure request latency with the connection setup amortised
/// away.
fn run_keepalive_get(
    addr: &str,
    clients: usize,
    points: &[QueryPoint],
    binary: bool,
) -> (f64, Vec<u64>) {
    fan_out(clients, points, |local| {
        let mut connection = dial(addr, binary);
        let mut latencies = Vec::with_capacity(local.len());
        for point in &local {
            let canonical = srra_serve::canonical_for(point).expect("grid resolves");
            let sent = Instant::now();
            connection
                .get(&canonical)
                .expect("get succeeds")
                .expect("warm store hits");
            latencies.push(sent.elapsed().as_micros() as u64);
        }
        latencies
    })
}

/// Pipelined phase: windows of [`BATCH`] `get` requests written before any
/// reply is read; per-point latency is the window time / window size.
fn run_pipelined_get(
    addr: &str,
    clients: usize,
    points: &[QueryPoint],
    binary: bool,
) -> (f64, Vec<u64>) {
    fan_out(clients, points, |local| {
        let mut connection = dial(addr, binary);
        let mut latencies = Vec::with_capacity(local.len());
        for window in local.chunks(BATCH) {
            let requests: Vec<Request> = window
                .iter()
                .map(|point| Request::Get {
                    canonical: srra_serve::canonical_for(point).expect("grid resolves"),
                })
                .collect();
            let sent = Instant::now();
            let responses = connection.pipeline(&requests).expect("pipeline succeeds");
            let per_point = (sent.elapsed().as_micros() as u64) / window.len() as u64;
            for response in &responses {
                assert!(
                    matches!(response, Response::Found { .. }),
                    "warm store hits"
                );
            }
            latencies.extend(std::iter::repeat(per_point).take(window.len()));
        }
        latencies
    })
}

/// Batched-lookup phase: [`BATCH`] canonicals per `mget` op.
fn run_mget(addr: &str, clients: usize, points: &[QueryPoint], binary: bool) -> (f64, Vec<u64>) {
    fan_out(clients, points, |local| {
        let mut connection = dial(addr, binary);
        let mut latencies = Vec::with_capacity(local.len());
        for window in local.chunks(BATCH) {
            let canonicals: Vec<String> = window
                .iter()
                .map(|point| srra_serve::canonical_for(point).expect("grid resolves"))
                .collect();
            let sent = Instant::now();
            let records = connection.mget(&canonicals).expect("mget succeeds");
            let per_point = (sent.elapsed().as_micros() as u64) / window.len() as u64;
            assert!(records.iter().all(Option::is_some), "warm store hits");
            latencies.extend(std::iter::repeat(per_point).take(window.len()));
        }
        latencies
    })
}

/// Batched-explore phase: [`BATCH`] points per `mexplore` op.
fn run_mexplore(
    addr: &str,
    clients: usize,
    points: &[QueryPoint],
    binary: bool,
) -> (f64, Vec<u64>) {
    fan_out(clients, points, |local| {
        let mut connection = dial(addr, binary);
        let mut latencies = Vec::with_capacity(local.len());
        for window in local.chunks(BATCH) {
            let sent = Instant::now();
            let reply = connection.mexplore(window).expect("mexplore succeeds");
            let per_point = (sent.elapsed().as_micros() as u64) / window.len() as u64;
            assert!(
                reply
                    .outcomes
                    .iter()
                    .all(|outcome| matches!(outcome, PointOutcome::Answered { .. })),
                "grid resolves"
            );
            latencies.extend(std::iter::repeat(per_point).take(window.len()));
        }
        latencies
    })
}

/// One full seven-phase suite over its own server and fresh shard directory,
/// speaking one codec end to end.  Returns the per-phase measurements and
/// the server's final statistics.
#[allow(clippy::type_complexity)]
fn run_suite(
    clients: usize,
    points: &[QueryPoint],
    binary: bool,
) -> (Vec<(&'static str, (f64, Vec<u64>))>, ServerStats) {
    let codec = if binary { "binary" } else { "json" };
    let dir = std::env::temp_dir().join(format!("srra-serve-bench-{codec}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::bind(&ServerConfig {
        workers: clients,
        sample_interval_ms: 1_000,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let phases = vec![
        (
            "cold_explore",
            run_oneshot(&addr, clients, points, false, binary),
        ),
        (
            "warm_explore",
            run_oneshot(&addr, clients, points, false, binary),
        ),
        (
            "warm_get",
            run_oneshot(&addr, clients, points, true, binary),
        ),
        (
            "warm_get_keepalive",
            run_keepalive_get(&addr, clients, points, binary),
        ),
        (
            "warm_get_pipelined",
            run_pipelined_get(&addr, clients, points, binary),
        ),
        ("warm_mget", run_mget(&addr, clients, points, binary)),
        (
            "warm_mexplore",
            run_mexplore(&addr, clients, points, binary),
        ),
    ];

    let client = one_shot_client(&addr, binary);
    let samples = client.series_samples(4).expect("series answers");
    assert!(!samples.is_empty(), "the sampler ran during the suite");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.evaluated as usize,
        points.len(),
        "every distinct point is evaluated exactly once, in the cold phase"
    );
    for op in ["get", "explore", "mget", "mexplore"] {
        let entry = stats.op(op).expect("per-op stats are reported");
        assert!(entry.count > 0, "op `{op}` was exercised");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("scratch dir removed");
    (phases, stats)
}

fn percentile(sorted: &[u64], fraction: f64) -> u64 {
    let index = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[index]
}

fn phase_json(name: &str, requests: usize, wall: f64, latencies: &[u64]) -> String {
    format!(
        "      \"{name}\": {{\"requests\":{requests},\"wall_ms\":{:.1},\"throughput_rps\":{:.0},\"p50_us\":{},\"p99_us\":{}}}",
        wall * 1e3,
        requests as f64 / wall,
        percentile(latencies, 0.50),
        percentile(latencies, 0.99)
    )
}

fn print_codec(
    name: &str,
    requests: usize,
    phases: &[(&'static str, (f64, Vec<u64>))],
    stats: &ServerStats,
    last: bool,
) {
    println!("    \"{name}\": {{");
    println!("      \"phases\": {{");
    for (index, (phase, (wall, latencies))) in phases.iter().enumerate() {
        let comma = if index + 1 < phases.len() { "," } else { "" };
        println!("{}{comma}", phase_json(phase, requests, *wall, latencies));
    }
    println!("      }},");
    println!(
        "      \"server_totals\": {{\"requests\":{},\"hits\":{},\"evaluated\":{},\"shard_records\":{:?},",
        stats.requests, stats.hits, stats.evaluated, stats.shard_records
    );
    let mut ops = String::new();
    for (index, entry) in stats.ops.iter().enumerate() {
        if index > 0 {
            ops.push(',');
        }
        ops.push_str(&format!(
            "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
            entry.op, entry.count, entry.p50_us, entry.p99_us
        ));
    }
    println!("        \"ops\":{{{ops}}}}}");
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .map(|raw| raw.parse().expect("client count is a number"))
        .unwrap_or(4);
    let points = grid();
    let requests = clients * points.len();

    let (json_phases, json_stats) = run_suite(clients, &points, false);
    let (binary_phases, binary_stats) = run_suite(clients, &points, true);

    println!("{{");
    println!(
        "  \"grid_points\": {}, \"clients\": {clients}, \"shards\": 4, \"batch\": {BATCH}, \"sample_interval_ms\": 1000,",
        points.len()
    );
    println!("  \"codecs\": {{");
    print_codec("json", requests, &json_phases, &json_stats, false);
    print_codec("binary", requests, &binary_phases, &binary_stats, true);
    println!("  }}");
    println!("}}");
}
