//! Prints the Table 1 reproduction (six kernels × three allocation versions).
//!
//! Usage:
//!
//! ```text
//! cargo run -p srra-bench --bin table1 [-- --summary]
//! ```

use srra_bench::table1::{render_table1, summarize, table1};

fn main() {
    let rows = table1();
    let summary_only = std::env::args().any(|a| a == "--summary");
    if summary_only {
        let summary = summarize(&rows);
        println!("{summary:#?}");
    } else {
        print!("{}", render_table1(&rows));
    }
}
