//! Prints the Figure 2(c) reproduction (running example, three allocators).
//!
//! Usage:
//!
//! ```text
//! cargo run -p srra-bench --bin figure2
//! ```

use srra_bench::figure2::{figure2, render_figure2};

fn main() {
    print!("{}", render_figure2(&figure2()));
}
