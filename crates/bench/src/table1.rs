//! Reproduction of Table 1: six kernels × three register-allocation versions.

use serde::{Deserialize, Serialize};
use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_kernels::{paper_suite, KernelSpec};

use crate::evaluate_compiled;

/// One row of the Table 1 reproduction (one kernel under one allocation algorithm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Kernel name (FIR, Dec-FIR, MAT, IMI, PAT, BIC).
    pub kernel: String,
    /// Design version (`v1` = FR-RA, `v2` = PR-RA, `v3` = CPA-RA).
    pub version: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Registers a full scalar replacement of every reference would need, rendered per
    /// reference (the paper's "Required S.R. Registers" column).
    pub required_registers: String,
    /// Register distribution chosen by the algorithm.
    pub distribution: String,
    /// Total registers consumed.
    pub total_registers: u64,
    /// Total execution cycles.
    pub cycles: u64,
    /// Percentage cycle reduction relative to the kernel's `v1` design (positive is
    /// better; `v1` itself reports 0).
    pub cycle_reduction_pct: f64,
    /// Achievable clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Wall-clock execution time in microseconds.
    pub execution_time_us: f64,
    /// Wall-clock speedup relative to the kernel's `v1` design.
    pub speedup: f64,
    /// Logic slices used.
    pub slices: u64,
    /// Slice occupancy of the XCV1000 device.
    pub occupancy_pct: f64,
    /// BlockRAMs used.
    pub block_rams: u64,
}

/// Aggregate figures corresponding to the percentages quoted in the paper's section 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Summary {
    /// Average cycle-count reduction of the `v2` (PR-RA) designs over `v1`, in percent.
    pub avg_cycle_gain_v2_pct: f64,
    /// Average cycle-count reduction of the `v3` (CPA-RA) designs over `v1`, in percent.
    pub avg_cycle_gain_v3_pct: f64,
    /// Average wall-clock gain of the `v2` designs over `v1`, in percent.
    pub avg_time_gain_v2_pct: f64,
    /// Average wall-clock gain of the `v3` designs over `v1`, in percent.
    pub avg_time_gain_v3_pct: f64,
    /// Average clock-period degradation of the `v3` designs relative to `v1`, in
    /// percent (positive means a slower clock).
    pub avg_clock_loss_v3_pct: f64,
    /// Average cycle-count advantage of `v3` over `v2`, in percent.
    pub avg_v3_over_v2_cycle_gain_pct: f64,
}

fn required_registers(kernel: &CompiledKernel) -> String {
    kernel
        .analysis()
        .iter()
        .map(|s| format!("{}:{}", s.array_name(), s.registers_full()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Computes the Table 1 rows for the given kernel suite.
///
/// Rows come in kernel order, with the three versions (`v1`, `v2`, `v3`) of each kernel
/// adjacent, exactly like the paper's table.  Each kernel is analysed exactly once —
/// the "required registers" column and all three versions share one [`CompiledKernel`]
/// context.  Kernels whose reference count exceeds the register budget are skipped
/// (this cannot happen for the paper suite).
pub fn table1_for(suite: &[KernelSpec]) -> Vec<Table1Row> {
    let [v1_ref, ..] = AllocatorRegistry::paper_versions();
    let mut rows = Vec::new();
    for spec in suite {
        let compiled = spec.compiled();
        let required = required_registers(&compiled);
        let Ok(v1) = evaluate_compiled(&compiled, v1_ref, spec.register_budget) else {
            continue;
        };
        for allocator in AllocatorRegistry::paper_versions() {
            let Ok(outcome) = evaluate_compiled(&compiled, allocator, spec.register_budget) else {
                continue;
            };
            rows.push(Table1Row {
                kernel: compiled.name().to_owned(),
                version: allocator.version_name().to_owned(),
                algorithm: allocator.label().to_owned(),
                required_registers: required.clone(),
                distribution: outcome.allocation.distribution(),
                total_registers: outcome.allocation.total_registers(),
                cycles: outcome.design.total_cycles,
                cycle_reduction_pct: outcome.design.cycle_reduction_vs(&v1.design),
                clock_period_ns: outcome.design.clock_period_ns,
                execution_time_us: outcome.design.execution_time_us,
                speedup: outcome.design.speedup_vs(&v1.design),
                slices: outcome.design.slices,
                occupancy_pct: outcome.design.slice_occupancy * 100.0,
                block_rams: outcome.design.block_rams,
            });
        }
    }
    rows
}

/// Computes the Table 1 rows for the paper's six-kernel suite.
pub fn table1() -> Vec<Table1Row> {
    table1_for(&paper_suite())
}

/// Aggregates the per-kernel rows into the paper's section-5 percentages.
pub fn summarize(rows: &[Table1Row]) -> Table1Summary {
    let mut cycle_v2 = Vec::new();
    let mut cycle_v3 = Vec::new();
    let mut time_v2 = Vec::new();
    let mut time_v3 = Vec::new();
    let mut clock_v3 = Vec::new();
    let mut v3_over_v2 = Vec::new();

    let kernels: Vec<&str> = {
        let mut names: Vec<&str> = rows.iter().map(|r| r.kernel.as_str()).collect();
        names.dedup();
        names
    };
    for kernel in kernels {
        let find = |version: &str| {
            rows.iter()
                .find(|r| r.kernel == kernel && r.version == version)
        };
        let (Some(v1), Some(v2), Some(v3)) = (find("v1"), find("v2"), find("v3")) else {
            continue;
        };
        cycle_v2.push(v2.cycle_reduction_pct);
        cycle_v3.push(v3.cycle_reduction_pct);
        time_v2.push(100.0 * (v1.execution_time_us - v2.execution_time_us) / v1.execution_time_us);
        time_v3.push(100.0 * (v1.execution_time_us - v3.execution_time_us) / v1.execution_time_us);
        clock_v3.push(100.0 * (v3.clock_period_ns - v1.clock_period_ns) / v1.clock_period_ns);
        v3_over_v2.push(100.0 * (v2.cycles as f64 - v3.cycles as f64) / v2.cycles as f64);
    }

    let mean = |values: &[f64]| {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    };

    Table1Summary {
        avg_cycle_gain_v2_pct: mean(&cycle_v2),
        avg_cycle_gain_v3_pct: mean(&cycle_v3),
        avg_time_gain_v2_pct: mean(&time_v2),
        avg_time_gain_v3_pct: mean(&time_v3),
        avg_clock_loss_v3_pct: mean(&clock_v3),
        avg_v3_over_v2_cycle_gain_pct: mean(&v3_over_v2),
    }
}

/// Renders the rows as an aligned text table plus the summary block.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1 reproduction — 32-register budget, XCV1000 model\n");
    out.push_str(&format!(
        "{:<8} {:<3} {:<7} {:>9} {:>12} {:>8} {:>10} {:>12} {:>8} {:>8} {:>7} {:>5}\n",
        "kernel",
        "ver",
        "algo",
        "registers",
        "cycles",
        "Δcyc%",
        "clock ns",
        "time us",
        "speedup",
        "slices",
        "occ %",
        "RAMs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:<3} {:<7} {:>9} {:>12} {:>8.1} {:>10.1} {:>12.1} {:>8.2} {:>8} {:>7.1} {:>5}\n",
            row.kernel,
            row.version,
            row.algorithm,
            row.total_registers,
            row.cycles,
            row.cycle_reduction_pct,
            row.clock_period_ns,
            row.execution_time_us,
            row.speedup,
            row.slices,
            row.occupancy_pct,
            row.block_rams
        ));
    }
    let summary = summarize(rows);
    out.push_str(&format!(
        "\naverages vs v1: v2 cycles {:+.1}%, v3 cycles {:+.1}%, v2 time {:+.1}%, v3 time {:+.1}%, v3 clock {:+.1}%, v3-over-v2 cycles {:+.1}%\n",
        summary.avg_cycle_gain_v2_pct,
        summary.avg_cycle_gain_v3_pct,
        summary.avg_time_gain_v2_pct,
        summary.avg_time_gain_v3_pct,
        summary.avg_clock_loss_v3_pct,
        summary.avg_v3_over_v2_cycle_gain_pct
    ));
    out.push_str(
        "paper reports: v2 cycles +4.9% avg, v3 cycles ~+27% avg, v2 time -0.2%, v3 time +21.5%, v3 clock -7.3%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_versions_for_each_of_the_six_kernels() {
        let rows = table1();
        assert_eq!(rows.len(), 18);
        for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
            let versions: Vec<&str> = rows
                .iter()
                .filter(|r| r.kernel == kernel)
                .map(|r| r.version.as_str())
                .collect();
            assert_eq!(versions, vec!["v1", "v2", "v3"], "kernel {kernel}");
        }
    }

    #[test]
    fn shape_matches_the_paper_conclusions() {
        let rows = table1();
        for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
            let row = |v: &str| {
                rows.iter()
                    .find(|r| r.kernel == kernel && r.version == v)
                    .unwrap()
            };
            let (v1, v2, v3) = (row("v1"), row("v2"), row("v3"));
            // Every design respects the 32-register budget.
            assert!(v1.total_registers <= 32);
            assert!(v2.total_registers <= 32);
            assert!(v3.total_registers <= 32);
            // v2 never uses fewer registers than v1.  Its cycle count may exceed v1 by
            // the prologue/epilogue transfers of an unprofitable partial replacement
            // (the effect the paper describes for Dec-FIR and PAT), but never by more
            // than a percent or two.
            assert!(v2.total_registers >= v1.total_registers, "{kernel}");
            assert!(v2.cycles as f64 <= v1.cycles as f64 * 1.02, "{kernel}");
            // CPA-RA (v3) never loses to PR-RA (v2) on cycles beyond the same
            // transfer-overhead noise.
            assert!(v3.cycles as f64 <= v2.cycles as f64 * 1.02, "{kernel}");
            // The baseline rows report no gain over themselves.
            assert!(v1.cycle_reduction_pct.abs() < 1e-9);
            assert!((v1.speedup - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn summary_reports_positive_v3_gains() {
        let rows = table1();
        let summary = summarize(&rows);
        assert!(summary.avg_cycle_gain_v3_pct > 0.0);
        assert!(summary.avg_cycle_gain_v3_pct >= summary.avg_cycle_gain_v2_pct);
        assert!(summary.avg_v3_over_v2_cycle_gain_pct >= 0.0);
        // The v3 clock is somewhat slower on average, as in the paper.
        assert!(summary.avg_clock_loss_v3_pct >= 0.0);
        assert!(summary.avg_clock_loss_v3_pct < 20.0);
    }

    #[test]
    fn rendering_contains_all_kernels_and_the_summary() {
        let text = render_table1(&table1());
        for name in [
            "fir",
            "dec_fir",
            "mat",
            "imi",
            "pat",
            "bic",
            "averages vs v1",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
