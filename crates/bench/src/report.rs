//! CSV export of the reproduction results, for plotting outside Rust.
//!
//! The paper presents Table 1 as a dense table and Figure 2(c) as a drawing; exporting
//! the reproduced data as CSV makes it easy to regenerate either with any plotting
//! tool:
//!
//! ```text
//! cargo run -p srra-bench --bin table1 > table1.txt     # human-readable
//! ```
//!
//! ```
//! use srra_bench::{figure2, table1};
//! use srra_bench::report::{figure2_csv, table1_csv};
//!
//! let csv = figure2_csv(&figure2());
//! assert!(csv.lines().count() == 4); // header + three algorithms
//! let csv = table1_csv(&table1());
//! assert!(csv.lines().count() == 19); // header + 6 kernels x 3 versions
//! ```

use crate::figure2::Figure2Row;
use crate::sweep::SweepPoint;
use crate::table1::Table1Row;

fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders the Figure 2(c) rows as CSV (header plus one line per algorithm).
pub fn figure2_csv(rows: &[Figure2Row]) -> String {
    let mut out = String::from(
        "algorithm,registers,distribution,memory_cycles_per_outer_iteration,memory_cycles_total\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            escape_field(&row.algorithm),
            row.total_registers,
            escape_field(&row.distribution),
            row.memory_cycles_per_outer_iteration,
            row.memory_cycles_total
        ));
    }
    out
}

/// Renders sweep points (from `srra_bench::sweep` or an `srra-explore` driven sweep)
/// as CSV, one line per parameter value.
pub fn sweep_csv(parameter_name: &str, points: &[SweepPoint]) -> String {
    let mut out = format!("{parameter_name},fr_ra_cycles,pr_ra_cycles,cpa_ra_cycles\n");
    for point in points {
        out.push_str(&format!(
            "{},{},{},{}\n",
            point.parameter, point.fr_ra_cycles, point.pr_ra_cycles, point.cpa_ra_cycles
        ));
    }
    out
}

/// Renders the Table 1 rows as CSV (header plus one line per kernel/version).
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "kernel,version,algorithm,registers,distribution,cycles,cycle_reduction_pct,clock_period_ns,execution_time_us,speedup,slices,occupancy_pct,block_rams\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.4},{},{:.3},{}\n",
            escape_field(&row.kernel),
            escape_field(&row.version),
            escape_field(&row.algorithm),
            row.total_registers,
            escape_field(&row.distribution),
            row.cycles,
            row.cycle_reduction_pct,
            row.clock_period_ns,
            row.execution_time_us,
            row.speedup,
            row.slices,
            row.occupancy_pct,
            row.block_rams
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure2, table1};

    #[test]
    fn figure2_csv_contains_the_published_numbers() {
        let csv = figure2_csv(&figure2());
        assert!(csv.starts_with("algorithm,"));
        assert!(csv.contains("FR-RA"));
        assert!(csv.contains(",1800,"));
        assert!(csv.contains(",1184,"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn table1_csv_has_one_row_per_design_point() {
        let rows = table1();
        let csv = table1_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        for row in &rows {
            assert!(csv.contains(&row.kernel));
        }
        // Every data line has the same number of fields as the header.
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            // Distributions contain spaces but no commas, so a plain split is fine.
            assert_eq!(line.split(',').count(), header_fields, "line: {line}");
        }
    }

    #[test]
    fn sweep_csv_lists_every_parameter_value() {
        use srra_ir::examples::paper_example;
        let points = crate::sweep::budget_sweep(&paper_example(), &[16, 64]);
        let csv = sweep_csv("budget", &points);
        assert!(csv.starts_with("budget,fr_ra_cycles,"));
        assert_eq!(csv.lines().count(), points.len() + 1);
        assert!(csv.lines().nth(1).unwrap().starts_with("16,"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("qu\"ote"), "\"qu\"\"ote\"");
    }
}
