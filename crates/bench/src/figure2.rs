//! Reproduction of Figure 2(c): the running example under the three allocators.

use serde::{Deserialize, Serialize};
use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_ir::examples::paper_example;

use crate::evaluate_compiled;

/// One allocator's row of the Figure 2(c) reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Row {
    /// Algorithm label (`FR-RA`, `PR-RA`, `CPA-RA`).
    pub algorithm: String,
    /// Register distribution, e.g. `a:30 b:1 c:20 d:1 e:1`.
    pub distribution: String,
    /// Total registers consumed.
    pub total_registers: u64,
    /// Memory cycles per iteration of the outer loop — the `T_mem` number the paper
    /// quotes (1,800 / 1,560 / 1,184).
    pub memory_cycles_per_outer_iteration: u64,
    /// Memory cycles over the whole execution.
    pub memory_cycles_total: u64,
}

/// The register budget of the paper's running example.
pub const FIGURE2_BUDGET: u64 = 64;

/// Computes the Figure 2(c) rows for FR-RA, PR-RA and CPA-RA.
///
/// # Panics
///
/// Never panics: the running example always satisfies the 64-register budget.
pub fn figure2() -> Vec<Figure2Row> {
    let kernel = CompiledKernel::new(paper_example());
    AllocatorRegistry::paper_versions()
        .into_iter()
        .map(|allocator| {
            let outcome = evaluate_compiled(&kernel, allocator, FIGURE2_BUDGET)
                .expect("running example fits the budget");
            Figure2Row {
                algorithm: allocator.label().to_owned(),
                distribution: outcome.allocation.distribution(),
                total_registers: outcome.allocation.total_registers(),
                memory_cycles_per_outer_iteration: outcome.cost.memory_cycles_per_outer_iteration,
                memory_cycles_total: outcome.cost.memory_cycles,
            }
        })
        .collect()
}

/// Renders the Figure 2(c) rows as an aligned text table.
pub fn render_figure2(rows: &[Figure2Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2(c) reproduction — running example, 64 registers\n");
    out.push_str(&format!(
        "{:<8} {:<36} {:>10} {:>12} {:>12}\n",
        "algo", "register distribution", "registers", "Tmem/outer", "Tmem total"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:<36} {:>10} {:>12} {:>12}\n",
            row.algorithm,
            row.distribution,
            row.total_registers,
            row.memory_cycles_per_outer_iteration,
            row.memory_cycles_total
        ));
    }
    out.push_str("paper reports Tmem/outer of 1800 (FR-RA), 1560 (PR-RA), 1184 (CPA-RA)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_published_numbers_exactly() {
        let rows = figure2();
        assert_eq!(rows.len(), 3);
        let by_algo = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap();
        assert_eq!(by_algo("FR-RA").memory_cycles_per_outer_iteration, 1_800);
        assert_eq!(by_algo("PR-RA").memory_cycles_per_outer_iteration, 1_560);
        assert_eq!(by_algo("CPA-RA").memory_cycles_per_outer_iteration, 1_184);
    }

    #[test]
    fn distributions_match_figure_2c() {
        let rows = figure2();
        let by_algo = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap();
        assert_eq!(by_algo("FR-RA").distribution, "a:30 b:1 d:1 c:20 e:1");
        assert_eq!(by_algo("PR-RA").distribution, "a:30 b:1 d:12 c:20 e:1");
        assert_eq!(by_algo("CPA-RA").distribution, "a:16 b:16 d:30 c:1 e:1");
    }

    #[test]
    fn render_contains_every_algorithm() {
        let text = render_figure2(&figure2());
        for name in ["FR-RA", "PR-RA", "CPA-RA", "1184"] {
            assert!(text.contains(name), "missing {name} in rendering");
        }
    }
}
