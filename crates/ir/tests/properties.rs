//! Property-based tests for the IR crate: affine-expression algebra and kernel
//! construction invariants.

use proptest::prelude::*;
use srra_ir::{AffineExpr, KernelBuilder, LoopId};

fn affine_strategy() -> impl Strategy<Value = AffineExpr> {
    (
        prop::collection::vec((-4i64..=4, 0usize..4), 0..4),
        -16i64..16,
    )
        .prop_map(|(terms, constant)| {
            let mut e = AffineExpr::constant(constant);
            for (coeff, loop_idx) in terms {
                let existing = e.coefficient(LoopId::new(loop_idx));
                e.set_term(LoopId::new(loop_idx), existing + coeff);
            }
            e
        })
}

fn point_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..32, 4)
}

proptest! {
    #[test]
    fn addition_is_commutative_and_matches_pointwise_evaluation(
        a in affine_strategy(),
        b in affine_strategy(),
        point in point_strategy(),
    ) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.eval(&point), a.eval(&point) + b.eval(&point));
    }

    #[test]
    fn subtraction_inverts_addition(a in affine_strategy(), b in affine_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.sub(&a), AffineExpr::zero());
    }

    #[test]
    fn scaling_matches_pointwise_evaluation(
        a in affine_strategy(),
        factor in -5i64..=5,
        point in point_strategy(),
    ) {
        prop_assert_eq!(a.scale(factor).eval(&point), factor * a.eval(&point));
    }

    #[test]
    fn range_bounds_every_evaluation(a in affine_strategy(), point in point_strategy()) {
        let trips: Vec<u64> = vec![32, 32, 32, 32];
        let (lo, hi) = a.range(&trips);
        let value = a.eval(&point);
        prop_assert!(value >= lo, "value {} below range lower bound {}", value, lo);
        prop_assert!(value <= hi, "value {} above range upper bound {}", value, hi);
    }

    #[test]
    fn canonical_representation_drops_zero_terms(a in affine_strategy()) {
        for loop_id in a.used_loops() {
            prop_assert_ne!(a.coefficient(loop_id), 0);
        }
        prop_assert_eq!(a.is_constant(), a.used_loops().is_empty());
    }

    #[test]
    fn generated_kernels_validate_and_render(
        trips in prop::collection::vec(1u64..16, 1..4),
        elem_bits in prop::sample::select(vec![1u32, 8, 16, 32]),
    ) {
        // Build a simple kernel: out[i0] = in[i0] + 1 inside the generated nest.
        let b = KernelBuilder::new("roundtrip");
        let mut loops = Vec::new();
        for (idx, trip) in trips.iter().enumerate() {
            loops.push(b.add_loop(format!("l{idx}"), *trip));
        }
        let extent = trips[0];
        let input = b.add_array("in", &[extent], elem_bits);
        let output = b.add_array("out", &[extent], elem_bits);
        let sum = b.add(b.read(input, &[b.idx(loops[0])]), b.int(1));
        b.store(output, &[b.idx(loops[0])], sum);
        let kernel = b.build().expect("valid kernel");

        // Re-validating an already validated kernel never fails, the pseudo-C rendering
        // mentions every array, and the structure survives a clone.
        srra_ir::validate_kernel(&kernel).expect("still valid");
        let rendered = kernel.to_string();
        prop_assert!(rendered.contains("in["));
        prop_assert!(rendered.contains("out["));
        prop_assert_eq!(kernel.clone(), kernel);
    }

    #[test]
    fn reference_table_is_stable_and_covers_all_occurrences(
        ni in 1u64..12,
        nj in 1u64..12,
    ) {
        let b = KernelBuilder::new("table");
        let i = b.add_loop("i", ni);
        let j = b.add_loop("j", nj);
        let x = b.add_array("x", &[ni, nj], 16);
        let y = b.add_array("y", &[ni], 16);
        let sum = b.add(b.read(x, &[b.idx(i), b.idx(j)]), b.read(y, &[b.idx(i)]));
        b.store(y, &[b.idx(i)], sum);
        let kernel = b.build().expect("valid kernel");
        let table = kernel.reference_table();
        prop_assert_eq!(table.len(), 2);
        let occurrence_total: usize = table.iter().map(|r| r.occurrences().len()).sum();
        prop_assert_eq!(occurrence_total, 3);
        prop_assert_eq!(kernel.reference_table(), table);
    }
}
