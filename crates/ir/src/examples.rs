//! Ready-made kernels used in documentation, tests and the Figure 2 reproduction.
//!
//! The main entry point is [`paper_example`], the code of Figure 1 of the paper:
//!
//! ```c
//! for (i = 0; i < Ni; i++)
//!   for (j = 0; j < Nj; j++)
//!     for (k = 0; k < Nk; k++) {
//!       d[i][k]    = a[k] * b[k][j];
//!       e[i][j][k] = c[j] * d[i][k];
//!     }
//! ```
//!
//! The larger, application-shaped kernels (FIR, MAT, ...) live in the `srra-kernels`
//! crate; the kernels here are deliberately tiny so they can be used in doc tests.

use crate::builder::KernelBuilder;
use crate::loop_nest::Kernel;

/// Loop bounds used by [`paper_example`]: `(Ni, Nj, Nk) = (2, 20, 30)`.
///
/// The paper's running example quotes full-replacement register requirements of 30 for
/// `a[k]`, 600 for `b[k][j]`, 20 for `c[j]`, 30 for `d[i][k]` and 1 for `e[i][j][k]`,
/// which correspond to these bounds.
pub const PAPER_EXAMPLE_BOUNDS: (u64, u64, u64) = (2, 20, 30);

/// Builds the Figure 1 running example with the default [`PAPER_EXAMPLE_BOUNDS`].
///
/// # Panics
///
/// Never panics: the construction is statically valid.
pub fn paper_example() -> Kernel {
    let (ni, nj, nk) = PAPER_EXAMPLE_BOUNDS;
    paper_example_with(ni, nj, nk)
}

/// Builds the Figure 1 running example with custom loop bounds.
///
/// # Panics
///
/// Panics if any bound is zero (the loop nest would be empty).
pub fn paper_example_with(ni: u64, nj: u64, nk: u64) -> Kernel {
    let b = KernelBuilder::new("paper_example");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let a = b.add_array("a", &[nk], 16);
    let arr_b = b.add_array("b", &[nk, nj], 16);
    let c = b.add_array("c", &[nj], 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);

    // d[i][k] = a[k] * b[k][j];
    let op1 = b.mul(b.read(a, &[b.idx(k)]), b.read(arr_b, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    // e[i][j][k] = c[j] * d[i][k];
    let op2 = b.mul(b.read(c, &[b.idx(j)]), b.read(d, &[b.idx(i), b.idx(k)]));
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);

    b.build().expect("paper example is statically valid")
}

/// A one-dimensional 3-point stencil: `out[i] = in[i] + in[i+1] + in[i+2]`.
///
/// Useful as a second small example with group reuse between shifted references.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn stencil3(n: u64) -> Kernel {
    assert!(n >= 3, "stencil3 needs at least 3 points");
    let b = KernelBuilder::new("stencil3");
    let i = b.add_loop("i", n - 2);
    let input = b.add_array("in", &[n], 16);
    let output = b.add_array("out", &[n], 16);
    let s01 = b.add(
        b.read(input, &[b.idx(i)]),
        b.read(input, &[b.idx(i).with_constant(1)]),
    );
    let s012 = b.add(s01, b.read(input, &[b.idx(i).with_constant(2)]));
    b.store(output, &[b.idx(i)], s012);
    b.build().expect("stencil3 is statically valid")
}

/// A small accumulating dot product: `s[0] = s[0] + x[i] * y[i]`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn dot_product(n: u64) -> Kernel {
    assert!(n > 0, "dot product needs at least one element");
    let b = KernelBuilder::new("dot_product");
    let i = b.add_loop("i", n);
    let x = b.add_array("x", &[n], 16);
    let y = b.add_array("y", &[n], 16);
    let s = b.add_array("s", &[1], 32);
    let prod = b.mul(b.read(x, &[b.idx(i)]), b.read(y, &[b.idx(i)]));
    let acc = b.add(b.read(s, &[b.constant(0)]), prod);
    b.store(s, &[b.constant(0)], acc);
    b.build().expect("dot product is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_structure() {
        let kernel = paper_example();
        assert_eq!(kernel.name(), "paper_example");
        assert_eq!(kernel.nest().depth(), 3);
        assert_eq!(kernel.nest().trip_counts(), vec![2, 20, 30]);
        assert_eq!(kernel.arrays().len(), 5);
        assert_eq!(kernel.nest().body().len(), 2);
        assert_eq!(kernel.nest().total_iterations(), 1200);
    }

    #[test]
    fn paper_example_with_custom_bounds() {
        let kernel = paper_example_with(4, 8, 16);
        assert_eq!(kernel.nest().trip_counts(), vec![4, 8, 16]);
        assert_eq!(kernel.reference_table().len(), 5);
    }

    #[test]
    fn stencil_has_three_input_reference_groups() {
        let kernel = stencil3(64);
        let table = kernel.reference_table();
        // in[i], in[i+1], in[i+2], out[i]
        assert_eq!(table.len(), 4);
        assert_eq!(table.by_array(crate::ArrayId::new(0)).len(), 3);
    }

    #[test]
    fn dot_product_references() {
        let kernel = dot_product(32);
        let table = kernel.reference_table();
        // x[i], y[i], s[0] (read+write merged into one group)
        assert_eq!(table.len(), 3);
        let s = table.find_by_name("s").unwrap();
        assert!(s.has_read() && s.has_write());
    }

    #[test]
    #[should_panic(expected = "stencil3 needs at least 3 points")]
    fn stencil_rejects_tiny_arrays() {
        let _ = stencil3(2);
    }
}
