use serde::{Deserialize, Serialize};

use crate::affine::AffineExpr;
use crate::loop_nest::LoopId;

/// Identifier of an array declared in a [`crate::Kernel`], by declaration order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ArrayId(usize);

impl ArrayId {
    /// Creates an array identifier from its declaration index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the declaration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Whether a reference reads from or writes to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The reference fetches a value from the array.
    Read,
    /// The reference stores a value into the array.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Declaration of an array variable: name, extents per dimension and element width.
///
/// The element width in bits matters for the FPGA model: it determines how many
/// BlockRAM bits and how many register bits (flip-flops) a scalar-replaced element
/// occupies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayDecl {
    name: String,
    dims: Vec<u64>,
    elem_bits: u32,
}

impl ArrayDecl {
    /// Creates a declaration.  Use [`crate::KernelBuilder::add_array`] in most cases.
    pub fn new(name: impl Into<String>, dims: Vec<u64>, elem_bits: u32) -> Self {
        Self {
            name: name.into(),
            dims,
            elem_bits,
        }
    }

    /// Name of the array variable.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extents of the array, one entry per dimension.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements across all dimensions.
    pub fn element_count(&self) -> u64 {
        self.dims.iter().fold(1u64, |acc, d| acc.saturating_mul(*d))
    }

    /// Width of one element in bits.
    pub fn elem_bits(&self) -> u32 {
        self.elem_bits
    }

    /// Total storage footprint of the array in bits.
    pub fn total_bits(&self) -> u64 {
        self.element_count()
            .saturating_mul(u64::from(self.elem_bits))
    }
}

/// A single textual reference to an array, e.g. `b[k][j]` as a read.
///
/// The subscripts are affine functions of the enclosing loop indices; this is the class
/// of references the paper's data-reuse analysis handles.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayRef {
    array: ArrayId,
    subscripts: Vec<AffineExpr>,
    access: AccessKind,
}

impl ArrayRef {
    /// Creates a reference to `array` with the given subscripts and access kind.
    pub fn new(array: ArrayId, subscripts: Vec<AffineExpr>, access: AccessKind) -> Self {
        Self {
            array,
            subscripts,
            access,
        }
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The affine subscript expressions, outermost dimension first.
    pub fn subscripts(&self) -> &[AffineExpr] {
        &self.subscripts
    }

    /// Whether this reference reads or writes.
    pub fn access(&self) -> AccessKind {
        self.access
    }

    /// Returns `true` if any subscript uses the given loop index.
    pub fn uses_loop(&self, loop_id: LoopId) -> bool {
        self.subscripts.iter().any(|s| s.uses_loop(loop_id))
    }

    /// The set of loops used by at least one subscript, in loop order, without
    /// duplicates.
    pub fn used_loops(&self) -> Vec<LoopId> {
        let mut loops: Vec<LoopId> = self
            .subscripts
            .iter()
            .flat_map(AffineExpr::used_loops)
            .collect();
        loops.sort_unstable();
        loops.dedup();
        loops
    }

    /// Evaluates the subscripts at the given iteration point.
    pub fn element_at(&self, point: &[i64]) -> Vec<i64> {
        self.subscripts.iter().map(|s| s.eval(point)).collect()
    }

    /// Returns a copy of this reference with the access kind replaced.
    #[must_use]
    pub fn with_access(mut self, access: AccessKind) -> Self {
        self.access = access;
        self
    }

    /// Renders the reference as `name[sub][sub]...` given array and loop names.
    pub fn render(&self, array_name: &str, loop_names: &[&str]) -> String {
        let mut out = String::from(array_name);
        for sub in &self.subscripts {
            out.push('[');
            out.push_str(&sub.render(loop_names));
            out.push(']');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn array_decl_accessors() {
        let d = ArrayDecl::new("img", vec![64, 64], 8);
        assert_eq!(d.name(), "img");
        assert_eq!(d.rank(), 2);
        assert_eq!(d.element_count(), 4096);
        assert_eq!(d.elem_bits(), 8);
        assert_eq!(d.total_bits(), 32768);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn array_ref_used_loops_are_deduplicated_and_sorted() {
        // b[k][j] in an (i, j, k) nest uses loops {1, 2}
        let b = ArrayRef::new(
            ArrayId::new(1),
            vec![AffineExpr::index(l(2)), AffineExpr::index(l(1))],
            AccessKind::Read,
        );
        assert_eq!(b.used_loops(), vec![l(1), l(2)]);
        assert!(b.uses_loop(l(1)));
        assert!(!b.uses_loop(l(0)));
    }

    #[test]
    fn element_at_evaluates_all_subscripts() {
        let r = ArrayRef::new(
            ArrayId::new(0),
            vec![
                AffineExpr::index(l(0)).with_constant(1),
                AffineExpr::index(l(1)).with_term(l(2), 1),
            ],
            AccessKind::Write,
        );
        assert_eq!(r.element_at(&[3, 4, 5]), vec![4, 9]);
    }

    #[test]
    fn render_produces_c_like_reference() {
        let r = ArrayRef::new(
            ArrayId::new(0),
            vec![
                AffineExpr::index(l(0)),
                AffineExpr::index(l(2)).with_constant(2),
            ],
            AccessKind::Read,
        );
        assert_eq!(r.render("d", &["i", "j", "k"]), "d[i][k + 2]");
    }

    #[test]
    fn with_access_flips_kind() {
        let r = ArrayRef::new(ArrayId::new(0), vec![], AccessKind::Read);
        assert_eq!(
            r.clone().with_access(AccessKind::Write).access(),
            AccessKind::Write
        );
        assert_eq!(ArrayId::new(3).to_string(), "A3");
    }
}
