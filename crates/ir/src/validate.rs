use std::collections::HashSet;

use crate::error::IrError;
use crate::loop_nest::Kernel;

/// Validates the structural invariants of a [`Kernel`].
///
/// The checks performed are:
///
/// 1. the kernel name is non-empty,
/// 2. loop and array names are unique,
/// 3. every array has at least one dimension and no zero extents,
/// 4. every reference targets a declared array with the declared rank,
/// 5. every subscript only mentions loops that exist in the nest,
/// 6. every subscript stays within the declared array extents over the whole iteration
///    space (a conservative corner-point check, exact for affine subscripts).
///
/// [`Kernel::new`] calls this automatically; it is exposed so external constructions
/// (e.g. deserialised kernels) can be re-validated.
///
/// # Errors
///
/// Returns the first violated invariant as an [`IrError`].
pub fn validate_kernel(kernel: &Kernel) -> Result<(), IrError> {
    if kernel.name().is_empty() {
        return Err(IrError::EmptyName);
    }

    let mut loop_names = HashSet::new();
    for l in kernel.nest().loops() {
        if !loop_names.insert(l.name().to_owned()) {
            return Err(IrError::DuplicateLoop {
                name: l.name().to_owned(),
            });
        }
    }

    let mut array_names = HashSet::new();
    for a in kernel.arrays() {
        if !array_names.insert(a.name().to_owned()) {
            return Err(IrError::DuplicateArray {
                name: a.name().to_owned(),
            });
        }
        if a.rank() == 0 || a.dims().contains(&0) {
            return Err(IrError::InvalidArrayShape {
                array: a.name().to_owned(),
            });
        }
    }

    let depth = kernel.nest().depth();
    let trip_counts = kernel.nest().trip_counts();

    for stmt in kernel.nest().body() {
        for array_ref in stmt.array_refs() {
            let Some(decl) = kernel.array(array_ref.array()) else {
                return Err(IrError::UnknownArray {
                    array_id: array_ref.array().index(),
                });
            };
            if decl.rank() != array_ref.subscripts().len() {
                return Err(IrError::RankMismatch {
                    array: decl.name().to_owned(),
                    declared: decl.rank(),
                    used: array_ref.subscripts().len(),
                });
            }
            for (dim, subscript) in array_ref.subscripts().iter().enumerate() {
                for loop_id in subscript.used_loops() {
                    if loop_id.index() >= depth {
                        return Err(IrError::UnknownLoop {
                            loop_id: loop_id.index(),
                            depth,
                        });
                    }
                }
                let (lo, hi) = subscript.range(&trip_counts);
                let extent = decl.dims()[dim];
                if lo < 0 {
                    return Err(IrError::SubscriptOutOfBounds {
                        array: decl.name().to_owned(),
                        dimension: dim,
                        value: lo,
                        extent,
                    });
                }
                if hi as u64 >= extent {
                    return Err(IrError::SubscriptOutOfBounds {
                        array: decl.name().to_owned(),
                        dimension: dim,
                        value: hi,
                        extent,
                    });
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{AccessKind, ArrayDecl, ArrayId, ArrayRef};
    use crate::expr::Expr;
    use crate::loop_nest::{Loop, LoopId, LoopNest};
    use crate::stmt::{Statement, StoreTarget};
    use crate::AffineExpr;

    fn body_reading(array: usize, subscript: AffineExpr) -> Vec<Statement> {
        vec![Statement::new(
            StoreTarget::Scalar("t".into()),
            Expr::array(ArrayRef::new(
                ArrayId::new(array),
                vec![subscript],
                AccessKind::Read,
            )),
        )]
    }

    fn kernel_with(
        arrays: Vec<ArrayDecl>,
        loops: Vec<Loop>,
        body: Vec<Statement>,
    ) -> Result<Kernel, IrError> {
        let nest = LoopNest::new(loops, body)?;
        Kernel::new("k", arrays, nest)
    }

    #[test]
    fn accepts_well_formed_kernel() {
        let kernel = kernel_with(
            vec![ArrayDecl::new("a", vec![8], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(0))),
        );
        assert!(kernel.is_ok());
    }

    #[test]
    fn rejects_rank_mismatch() {
        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![8, 8], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(0))),
        )
        .unwrap_err();
        assert!(matches!(err, IrError::RankMismatch { .. }));
    }

    #[test]
    fn rejects_unknown_loop_in_subscript() {
        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![64], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(3))),
        )
        .unwrap_err();
        assert_eq!(
            err,
            IrError::UnknownLoop {
                loop_id: 3,
                depth: 1
            }
        );
    }

    #[test]
    fn rejects_out_of_bounds_subscript() {
        // i + 6 over 0..8 reaches 13, array extent is 8.
        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![8], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(0)).with_constant(6)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IrError::SubscriptOutOfBounds { value: 13, .. }
        ));
    }

    #[test]
    fn rejects_negative_subscript() {
        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![8], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(0)).with_constant(-1)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IrError::SubscriptOutOfBounds { value: -1, .. }
        ));
    }

    #[test]
    fn rejects_duplicate_names_and_bad_shapes() {
        let err = kernel_with(
            vec![
                ArrayDecl::new("a", vec![8], 16),
                ArrayDecl::new("a", vec![8], 16),
            ],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::index(LoopId::new(0))),
        )
        .unwrap_err();
        assert_eq!(err, IrError::DuplicateArray { name: "a".into() });

        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![], 16)],
            vec![Loop::new("i", 8)],
            body_reading(0, AffineExpr::constant(0)),
        )
        .unwrap_err();
        assert_eq!(err, IrError::InvalidArrayShape { array: "a".into() });

        let err = kernel_with(
            vec![ArrayDecl::new("a", vec![8], 16)],
            vec![Loop::new("i", 4), Loop::new("i", 4)],
            body_reading(0, AffineExpr::index(LoopId::new(0))),
        )
        .unwrap_err();
        assert_eq!(err, IrError::DuplicateLoop { name: "i".into() });
    }

    #[test]
    fn rejects_empty_name() {
        let nest = LoopNest::new(
            vec![Loop::new("i", 4)],
            body_reading(0, AffineExpr::index(LoopId::new(0))),
        )
        .unwrap();
        let err = Kernel::new("", vec![ArrayDecl::new("a", vec![4], 16)], nest).unwrap_err();
        assert_eq!(err, IrError::EmptyName);
    }
}
