//! Pretty-printing of kernels as pseudo-C, mirroring the paper's Figure 1 style.

use std::fmt;

use crate::expr::Expr;
use crate::loop_nest::Kernel;
use crate::stmt::StoreTarget;

fn render_expr(expr: &Expr, kernel: &Kernel, names: &[&str], out: &mut String) {
    match expr {
        Expr::ArrayAccess(r) => {
            let array_name = kernel
                .array(r.array())
                .map(|a| a.name().to_owned())
                .unwrap_or_else(|| r.array().to_string());
            out.push_str(&r.render(&array_name, names));
        }
        Expr::Scalar(name) => out.push_str(name),
        Expr::LoopIndex(l) => {
            let name = names
                .get(l.index())
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| format!("i{}", l.index()));
            out.push_str(&name);
        }
        Expr::IntConst(v) => out.push_str(&v.to_string()),
        Expr::Binary { op, lhs, rhs } => {
            out.push('(');
            render_expr(lhs, kernel, names, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            render_expr(rhs, kernel, names, out);
            out.push(')');
        }
        Expr::Unary { op, operand } => {
            out.push_str(op.mnemonic());
            out.push('(');
            render_expr(operand, kernel, names, out);
            out.push(')');
        }
    }
}

impl fmt::Display for Kernel {
    /// Renders the kernel as indented pseudo-C, one `for` line per loop and one
    /// assignment per body statement.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.nest().loop_names();
        writeln!(f, "// kernel {}", self.name())?;
        for (depth, l) in self.nest().loops().iter().enumerate() {
            let indent = "  ".repeat(depth);
            writeln!(
                f,
                "{indent}for ({name} = 0; {name} < {trip}; {name}++)",
                name = l.name(),
                trip = l.trip_count()
            )?;
        }
        let body_indent = "  ".repeat(self.nest().depth());
        for stmt in self.nest().body() {
            let mut line = String::new();
            match stmt.target() {
                StoreTarget::Array(r) => {
                    let array_name = self
                        .array(r.array())
                        .map(|a| a.name().to_owned())
                        .unwrap_or_else(|| r.array().to_string());
                    line.push_str(&r.render(&array_name, &names));
                }
                StoreTarget::Scalar(name) => line.push_str(name),
            }
            line.push_str(" = ");
            render_expr(stmt.value(), self, &names, &mut line);
            writeln!(f, "{body_indent}{line};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::examples::paper_example;

    #[test]
    fn paper_example_renders_like_figure_1() {
        let text = paper_example().to_string();
        assert!(text.contains("for (i = 0; i < 2; i++)"));
        assert!(text.contains("for (j = 0; j < 20; j++)"));
        assert!(text.contains("for (k = 0; k < 30; k++)"));
        assert!(text.contains("d[i][k] = (a[k] * b[k][j]);"));
        assert!(text.contains("e[i][j][k] = (c[j] * d[i][k]);"));
    }

    #[test]
    fn indentation_follows_depth() {
        let text = paper_example().to_string();
        // body statements are indented three levels (depth 3)
        assert!(text.lines().any(|l| l.starts_with("      d[i][k]")));
    }
}
