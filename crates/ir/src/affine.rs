use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::loop_nest::LoopId;

/// An affine function of loop index variables: `c0 + c1*i1 + c2*i2 + ...`.
///
/// Subscripts of array references in the paper's program class are affine functions of
/// the enclosing loop indices.  The representation is sparse: only loops with a non-zero
/// coefficient are stored, so an `AffineExpr` is independent of the depth of the nest it
/// is eventually used in.
///
/// # Example
///
/// ```
/// use srra_ir::{AffineExpr, LoopId};
///
/// // 2*i + j + 3
/// let e = AffineExpr::constant(3)
///     .with_term(LoopId::new(0), 2)
///     .with_term(LoopId::new(1), 1);
/// assert_eq!(e.coefficient(LoopId::new(0)), 2);
/// assert_eq!(e.eval(&[5, 7]), 2 * 5 + 7 + 3);
/// assert!(e.uses_loop(LoopId::new(1)));
/// assert!(!e.uses_loop(LoopId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AffineExpr {
    /// Non-zero coefficients keyed by loop.
    terms: BTreeMap<LoopId, i64>,
    /// Constant offset.
    constant: i64,
}

impl AffineExpr {
    /// Creates the zero affine expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Creates a constant affine expression.
    pub fn constant(value: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// Creates the expression consisting of a single loop index (coefficient one).
    pub fn index(loop_id: LoopId) -> Self {
        Self::zero().with_term(loop_id, 1)
    }

    /// Returns a copy of `self` with the coefficient of `loop_id` set to `coefficient`.
    ///
    /// A zero coefficient removes the term entirely, keeping the representation
    /// canonical so that structural equality matches semantic equality.
    #[must_use]
    pub fn with_term(mut self, loop_id: LoopId, coefficient: i64) -> Self {
        self.set_term(loop_id, coefficient);
        self
    }

    /// Returns a copy of `self` with the constant offset replaced by `constant`.
    #[must_use]
    pub fn with_constant(mut self, constant: i64) -> Self {
        self.constant = constant;
        self
    }

    /// Sets the coefficient of `loop_id` in place.
    pub fn set_term(&mut self, loop_id: LoopId, coefficient: i64) {
        if coefficient == 0 {
            self.terms.remove(&loop_id);
        } else {
            self.terms.insert(loop_id, coefficient);
        }
    }

    /// Returns the coefficient of `loop_id` (zero if absent).
    pub fn coefficient(&self, loop_id: LoopId) -> i64 {
        self.terms.get(&loop_id).copied().unwrap_or(0)
    }

    /// Returns the constant offset.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Returns `true` if the expression has no index terms at all.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the coefficient of `loop_id` is non-zero.
    pub fn uses_loop(&self, loop_id: LoopId) -> bool {
        self.terms.contains_key(&loop_id)
    }

    /// Iterates over `(loop, coefficient)` pairs with non-zero coefficients, in loop order.
    pub fn terms(&self) -> impl Iterator<Item = (LoopId, i64)> + '_ {
        self.terms.iter().map(|(l, c)| (*l, *c))
    }

    /// Returns the set of loops with a non-zero coefficient, in loop order.
    pub fn used_loops(&self) -> Vec<LoopId> {
        self.terms.keys().copied().collect()
    }

    /// Evaluates the expression at the given iteration point.
    ///
    /// `point[d]` is the value of the loop at depth `d`; loops beyond the end of `point`
    /// are treated as zero, which is convenient when evaluating partial iteration
    /// vectors.
    pub fn eval(&self, point: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (loop_id, coeff) in &self.terms {
            let value = point.get(loop_id.index()).copied().unwrap_or(0);
            acc += coeff * value;
        }
        acc
    }

    /// Adds another affine expression term-wise.
    #[must_use]
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (loop_id, coeff) in &other.terms {
            let new = out.coefficient(*loop_id) + coeff;
            out.set_term(*loop_id, new);
        }
        out
    }

    /// Subtracts another affine expression term-wise.
    #[must_use]
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scale(-1))
    }

    /// Multiplies every coefficient and the constant by `factor`.
    #[must_use]
    pub fn scale(&self, factor: i64) -> AffineExpr {
        if factor == 0 {
            return AffineExpr::zero();
        }
        let mut out = AffineExpr::constant(self.constant * factor);
        for (loop_id, coeff) in &self.terms {
            out.set_term(*loop_id, coeff * factor);
        }
        out
    }

    /// Returns the minimum and maximum value the expression can take when each loop `d`
    /// ranges over `0..trip_counts[d]` (inclusive of `trip_counts[d] - 1`).
    ///
    /// Loops not covered by `trip_counts` are assumed to be fixed at zero.  Returns the
    /// constant twice when the expression is constant.
    pub fn range(&self, trip_counts: &[u64]) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (loop_id, coeff) in &self.terms {
            let trip = trip_counts.get(loop_id.index()).copied().unwrap_or(1);
            let max_index = trip.saturating_sub(1) as i64;
            let extreme = coeff * max_index;
            if extreme >= 0 {
                hi += extreme;
            } else {
                lo += extreme;
            }
        }
        (lo, hi)
    }

    /// Renders the expression using the supplied loop names (`names[d]` for depth `d`).
    ///
    /// Loops without a supplied name are rendered as `i<depth>`.
    pub fn render(&self, names: &[&str]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (loop_id, coeff) in &self.terms {
            let name = names
                .get(loop_id.index())
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| format!("i{}", loop_id.index()));
            let part = match coeff {
                1 => name,
                -1 => format!("-{name}"),
                c => format!("{c}*{name}"),
            };
            parts.push(part);
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut out = String::new();
        for (idx, part) in parts.iter().enumerate() {
            if idx == 0 {
                out.push_str(part);
            } else if let Some(stripped) = part.strip_prefix('-') {
                out.push_str(" - ");
                out.push_str(stripped);
            } else {
                out.push_str(" + ");
                out.push_str(part);
            }
        }
        out
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

impl From<i64> for AffineExpr {
    fn from(value: i64) -> Self {
        AffineExpr::constant(value)
    }
}

impl From<LoopId> for AffineExpr {
    fn from(value: LoopId) -> Self {
        AffineExpr::index(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn constant_expression_roundtrip() {
        let e = AffineExpr::constant(7);
        assert!(e.is_constant());
        assert_eq!(e.constant_term(), 7);
        assert_eq!(e.eval(&[1, 2, 3]), 7);
        assert_eq!(e.used_loops(), Vec::<LoopId>::new());
    }

    #[test]
    fn index_expression_uses_loop() {
        let e = AffineExpr::index(l(2));
        assert!(e.uses_loop(l(2)));
        assert!(!e.uses_loop(l(0)));
        assert_eq!(e.eval(&[0, 0, 9]), 9);
    }

    #[test]
    fn zero_coefficient_is_removed() {
        let e = AffineExpr::index(l(1)).with_term(l(1), 0);
        assert!(e.is_constant());
        assert_eq!(e, AffineExpr::zero());
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = AffineExpr::constant(3)
            .with_term(l(0), 2)
            .with_term(l(1), -1);
        let b = AffineExpr::constant(-5)
            .with_term(l(1), 4)
            .with_term(l(2), 1);
        let sum = a.add(&b);
        assert_eq!(sum.coefficient(l(0)), 2);
        assert_eq!(sum.coefficient(l(1)), 3);
        assert_eq!(sum.coefficient(l(2)), 1);
        assert_eq!(sum.constant_term(), -2);
        let back = sum.sub(&b);
        assert_eq!(back, a);
    }

    #[test]
    fn scale_by_zero_gives_zero() {
        let a = AffineExpr::constant(3).with_term(l(0), 2);
        assert_eq!(a.scale(0), AffineExpr::zero());
    }

    #[test]
    fn eval_matches_manual_computation() {
        // 3 + 2*i - j
        let e = AffineExpr::constant(3)
            .with_term(l(0), 2)
            .with_term(l(1), -1);
        assert_eq!(e.eval(&[4, 5]), 3 + 8 - 5);
        // missing dimensions are treated as zero
        assert_eq!(e.eval(&[4]), 3 + 8);
    }

    #[test]
    fn range_covers_negative_coefficients() {
        // i - j with 0<=i<10, 0<=j<4  ->  min = -3, max = 9
        let e = AffineExpr::index(l(0)).with_term(l(1), -1);
        assert_eq!(e.range(&[10, 4]), (-3, 9));
    }

    #[test]
    fn range_of_constant_is_degenerate() {
        let e = AffineExpr::constant(42);
        assert_eq!(e.range(&[8, 8]), (42, 42));
    }

    #[test]
    fn render_uses_names_and_falls_back() {
        let e = AffineExpr::constant(1)
            .with_term(l(0), 1)
            .with_term(l(2), -2);
        assert_eq!(e.render(&["i", "j", "k"]), "i - 2*k + 1");
        assert_eq!(e.render(&["i"]), "i - 2*i2 + 1");
        assert_eq!(AffineExpr::zero().render(&[]), "0");
    }

    #[test]
    fn display_matches_render_without_names() {
        let e = AffineExpr::index(l(1)).with_constant(4);
        assert_eq!(e.to_string(), e.render(&[]));
    }

    #[test]
    fn conversion_from_primitives() {
        assert_eq!(AffineExpr::from(9), AffineExpr::constant(9));
        assert_eq!(AffineExpr::from(l(3)), AffineExpr::index(l(3)));
    }
}
