use serde::{Deserialize, Serialize};

use crate::array::ArrayDecl;
use crate::error::IrError;
use crate::reference::ReferenceTable;
use crate::stmt::Statement;
use crate::validate::validate_kernel;

/// Identifier of a loop within a [`LoopNest`], by depth (0 = outermost).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LoopId(usize);

impl LoopId {
    /// Creates a loop identifier for the loop at the given depth.
    pub fn new(depth: usize) -> Self {
        Self(depth)
    }

    /// Returns the depth of the loop (0 = outermost).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A single counted loop of a perfect nest.
///
/// Loops are normalised: the index ranges over `0..trip_count` with unit stride, which
/// is the canonical form used by the paper's data-reuse analysis.  Non-unit strides in
/// the original source (such as the decimation factor of the Dec-FIR kernel) are folded
/// into the subscript coefficients instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Loop {
    name: String,
    trip_count: u64,
}

impl Loop {
    /// Creates a loop with the given induction-variable name and trip count.
    pub fn new(name: impl Into<String>, trip_count: u64) -> Self {
        Self {
            name: name.into(),
            trip_count,
        }
    }

    /// Name of the induction variable.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of iterations the loop executes.
    pub fn trip_count(&self) -> u64 {
        self.trip_count
    }
}

/// A perfectly nested loop together with its body statements.
///
/// The body statements are executed, in order, once per iteration of the innermost
/// loop.  This is exactly the program shape assumed by the paper (perfect nests with
/// compile-time known bounds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    loops: Vec<Loop>,
    body: Vec<Statement>,
}

impl LoopNest {
    /// Creates a loop nest from loops (outermost first) and body statements.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NoLoops`] when `loops` is empty, [`IrError::EmptyBody`] when
    /// `body` is empty, and [`IrError::EmptyLoop`] when any trip count is zero.
    pub fn new(loops: Vec<Loop>, body: Vec<Statement>) -> Result<Self, IrError> {
        if loops.is_empty() {
            return Err(IrError::NoLoops);
        }
        if body.is_empty() {
            return Err(IrError::EmptyBody);
        }
        if let Some(l) = loops.iter().find(|l| l.trip_count() == 0) {
            return Err(IrError::EmptyLoop {
                loop_name: l.name().to_owned(),
            });
        }
        Ok(Self { loops, body })
    }

    /// Loops of the nest, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop at the given depth, if any.
    pub fn loop_at(&self, id: LoopId) -> Option<&Loop> {
        self.loops.get(id.index())
    }

    /// Number of loops in the nest.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Trip count of the loop at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is deeper than the nest.
    pub fn trip_count(&self, id: LoopId) -> u64 {
        self.loops[id.index()].trip_count()
    }

    /// Trip counts of all loops, outermost first.
    pub fn trip_counts(&self) -> Vec<u64> {
        self.loops.iter().map(Loop::trip_count).collect()
    }

    /// Total number of innermost iterations (the product of all trip counts).
    pub fn total_iterations(&self) -> u64 {
        self.loops
            .iter()
            .map(Loop::trip_count)
            .fold(1u64, |acc, t| acc.saturating_mul(t))
    }

    /// Product of the trip counts of the loops strictly deeper than `id`.
    ///
    /// Returns 1 when `id` is the innermost loop.
    pub fn iterations_inside(&self, id: LoopId) -> u64 {
        self.loops
            .iter()
            .skip(id.index() + 1)
            .map(Loop::trip_count)
            .fold(1u64, |acc, t| acc.saturating_mul(t))
    }

    /// Product of the trip counts of the loops at depth `id` and shallower.
    pub fn iterations_outside_inclusive(&self, id: LoopId) -> u64 {
        self.loops
            .iter()
            .take(id.index() + 1)
            .map(Loop::trip_count)
            .fold(1u64, |acc, t| acc.saturating_mul(t))
    }

    /// Body statements executed each innermost iteration.
    pub fn body(&self) -> &[Statement] {
        &self.body
    }

    /// Loop identifiers, outermost first.
    pub fn loop_ids(&self) -> impl Iterator<Item = LoopId> + '_ {
        (0..self.loops.len()).map(LoopId::new)
    }

    /// Names of the induction variables, outermost first.
    pub fn loop_names(&self) -> Vec<&str> {
        self.loops.iter().map(Loop::name).collect()
    }
}

/// A named, validated computation: array declarations plus a perfect loop nest.
///
/// A `Kernel` is the unit consumed by the analyses (`srra-reuse`, `srra-dfg`) and by the
/// allocation algorithms in `srra-core`.  Construct one with [`Kernel::new`] or, more
/// conveniently, with [`crate::KernelBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    arrays: Vec<ArrayDecl>,
    nest: LoopNest,
}

impl Kernel {
    /// Creates and validates a kernel.
    ///
    /// # Errors
    ///
    /// Returns any validation error detected by [`validate_kernel`]: rank mismatches,
    /// unknown loops or arrays, duplicate names, out-of-bounds subscripts, etc.
    pub fn new(
        name: impl Into<String>,
        arrays: Vec<ArrayDecl>,
        nest: LoopNest,
    ) -> Result<Self, IrError> {
        let kernel = Self {
            name: name.into(),
            arrays,
            nest,
        };
        validate_kernel(&kernel)?;
        Ok(kernel)
    }

    /// Name of the kernel.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared arrays, in declaration order (indexable by [`crate::ArrayId`]).
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The array declaration for `id`, if it exists.
    pub fn array(&self, id: crate::ArrayId) -> Option<&ArrayDecl> {
        self.arrays.get(id.index())
    }

    /// The loop nest of the kernel.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Enumerates every textual array reference in the body, assigning stable
    /// [`crate::RefId`]s.
    pub fn reference_table(&self) -> ReferenceTable {
        ReferenceTable::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{AccessKind, ArrayRef};
    use crate::expr::Expr;
    use crate::stmt::StoreTarget;
    use crate::AffineExpr;
    use crate::ArrayId;

    fn simple_body() -> Vec<Statement> {
        // a[i] = a[i] + 1
        let read = Expr::array(ArrayRef::new(
            ArrayId::new(0),
            vec![AffineExpr::index(LoopId::new(0))],
            AccessKind::Read,
        ));
        let value = Expr::add(read, Expr::int(1));
        vec![Statement::new(
            StoreTarget::Array(ArrayRef::new(
                ArrayId::new(0),
                vec![AffineExpr::index(LoopId::new(0))],
                AccessKind::Write,
            )),
            value,
        )]
    }

    #[test]
    fn loop_nest_rejects_empty_configurations() {
        assert_eq!(
            LoopNest::new(vec![], simple_body()).unwrap_err(),
            IrError::NoLoops
        );
        assert_eq!(
            LoopNest::new(vec![Loop::new("i", 4)], vec![]).unwrap_err(),
            IrError::EmptyBody
        );
        assert_eq!(
            LoopNest::new(vec![Loop::new("i", 0)], simple_body()).unwrap_err(),
            IrError::EmptyLoop {
                loop_name: "i".into()
            }
        );
    }

    #[test]
    fn iteration_products() {
        let nest = LoopNest::new(
            vec![Loop::new("i", 2), Loop::new("j", 20), Loop::new("k", 30)],
            simple_body(),
        )
        .unwrap();
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.total_iterations(), 1200);
        assert_eq!(nest.iterations_inside(LoopId::new(0)), 600);
        assert_eq!(nest.iterations_inside(LoopId::new(2)), 1);
        assert_eq!(nest.iterations_outside_inclusive(LoopId::new(0)), 2);
        assert_eq!(nest.iterations_outside_inclusive(LoopId::new(2)), 1200);
        assert_eq!(nest.trip_counts(), vec![2, 20, 30]);
        assert_eq!(nest.loop_names(), vec!["i", "j", "k"]);
    }

    #[test]
    fn kernel_requires_valid_references() {
        let nest = LoopNest::new(vec![Loop::new("i", 4)], simple_body()).unwrap();
        // No array declared -> unknown array error.
        let err = Kernel::new("bad", vec![], nest.clone()).unwrap_err();
        assert_eq!(err, IrError::UnknownArray { array_id: 0 });
        // Correct declaration validates.
        let ok = Kernel::new("good", vec![ArrayDecl::new("a", vec![4], 16)], nest).unwrap();
        assert_eq!(ok.name(), "good");
        assert_eq!(ok.arrays().len(), 1);
        // the read and the write of a[i] share one reference group
        assert_eq!(ok.reference_table().len(), 1);
    }

    #[test]
    fn loop_id_display() {
        assert_eq!(LoopId::new(2).to_string(), "L2");
    }
}
