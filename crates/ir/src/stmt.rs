use serde::{Deserialize, Serialize};

use crate::array::ArrayRef;
use crate::expr::Expr;

/// The destination of a statement's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreTarget {
    /// Store into an array element (a memory write unless scalar-replaced).
    Array(ArrayRef),
    /// Define a scalar temporary visible to later statements of the same iteration.
    Scalar(String),
}

impl StoreTarget {
    /// Returns the array reference when the target is an array store.
    pub fn as_array(&self) -> Option<&ArrayRef> {
        match self {
            StoreTarget::Array(r) => Some(r),
            StoreTarget::Scalar(_) => None,
        }
    }

    /// Returns the scalar name when the target is a scalar definition.
    pub fn as_scalar(&self) -> Option<&str> {
        match self {
            StoreTarget::Array(_) => None,
            StoreTarget::Scalar(name) => Some(name),
        }
    }
}

/// One assignment executed per innermost loop iteration: `target = value`.
///
/// Statements execute in program order within an iteration; a scalar defined by an
/// earlier statement may be consumed by a later one, and an array element written by an
/// earlier statement may be read back by a later one (the `d[i][k]` flow in the paper's
/// Figure 1 example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    target: StoreTarget,
    value: Expr,
}

impl Statement {
    /// Creates a statement assigning `value` to `target`.
    pub fn new(target: StoreTarget, value: Expr) -> Self {
        Self { target, value }
    }

    /// The destination of the statement.
    pub fn target(&self) -> &StoreTarget {
        &self.target
    }

    /// The value expression of the statement.
    pub fn value(&self) -> &Expr {
        &self.value
    }

    /// All array references of the statement: value reads first, then the target write
    /// (if the target is an array).
    pub fn array_refs(&self) -> Vec<&ArrayRef> {
        let mut refs = self.value.array_refs();
        if let StoreTarget::Array(r) = &self.target {
            refs.push(r);
        }
        refs
    }

    /// Number of operation nodes in the statement's value expression.
    pub fn operation_count(&self) -> usize {
        self.value.operation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{AccessKind, ArrayId};
    use crate::{AffineExpr, LoopId};

    fn read(array: usize) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(array),
            vec![AffineExpr::index(LoopId::new(0))],
            AccessKind::Read,
        )
    }

    fn write(array: usize) -> ArrayRef {
        read(array).with_access(AccessKind::Write)
    }

    #[test]
    fn store_target_accessors() {
        let a = StoreTarget::Array(write(0));
        assert!(a.as_array().is_some());
        assert!(a.as_scalar().is_none());
        let s = StoreTarget::Scalar("sum".into());
        assert_eq!(s.as_scalar(), Some("sum"));
        assert!(s.as_array().is_none());
    }

    #[test]
    fn array_refs_include_target_write_last() {
        let stmt = Statement::new(
            StoreTarget::Array(write(2)),
            Expr::mul(Expr::array(read(0)), Expr::array(read(1))),
        );
        let refs = stmt.array_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[2].array(), ArrayId::new(2));
        assert!(refs[2].access().is_write());
        assert_eq!(stmt.operation_count(), 1);
    }

    #[test]
    fn scalar_target_contributes_no_array_ref() {
        let stmt = Statement::new(StoreTarget::Scalar("t".into()), Expr::array(read(0)));
        assert_eq!(stmt.array_refs().len(), 1);
    }
}
