//! Loop-nest and affine array-reference intermediate representation.
//!
//! This crate is the front end of the `srra` workspace, a reproduction of
//! *"A Register Allocation Algorithm in the Presence of Scalar Replacement for
//! Fine-Grain Configurable Architectures"* (Baradaran & Diniz, DATE 2005).
//!
//! The paper analyses computations expressed as **perfectly nested loops** whose
//! array references use **affine subscript functions** of the enclosing loop index
//! variables.  This crate models exactly that class of programs:
//!
//! * [`Loop`] / [`LoopNest`] — a perfect nest of counted loops,
//! * [`AffineExpr`] — an affine function of loop indices,
//! * [`ArrayDecl`] / [`ArrayRef`] — array variables and their subscripted references,
//! * [`Expr`] / [`Statement`] — the expression DAG forming the loop body,
//! * [`Kernel`] — a named, validated loop nest with its array declarations,
//! * [`KernelBuilder`] — an ergonomic builder used by `srra-kernels` and by user code.
//!
//! # Example
//!
//! Build the running example of the paper (Figure 1):
//!
//! ```
//! use srra_ir::examples::paper_example;
//!
//! let kernel = paper_example();
//! assert_eq!(kernel.nest().depth(), 3);
//! assert_eq!(kernel.arrays().len(), 5);
//! // d[i][k] = a[k] * b[k][j];  e[i][j][k] = c[j] * d[i][k];
//! assert_eq!(kernel.nest().body().len(), 2);
//! ```
//!
//! Or build a kernel from scratch:
//!
//! ```
//! use srra_ir::{KernelBuilder, BinOp};
//!
//! # fn main() -> Result<(), srra_ir::IrError> {
//! let b = KernelBuilder::new("dot");
//! let i = b.add_loop("i", 128);
//! let x = b.add_array("x", &[128], 16);
//! let y = b.add_array("y", &[128], 16);
//! let s = b.add_array("s", &[1], 32);
//! let prod = b.mul(b.read(x, &[b.idx(i)]), b.read(y, &[b.idx(i)]));
//! let acc = b.binary(BinOp::Add, b.read(s, &[b.constant(0)]), prod);
//! b.store(s, &[b.constant(0)], acc);
//! let kernel = b.build()?;
//! assert_eq!(kernel.reference_table().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod array;
mod builder;
mod display;
mod error;
pub mod examples;
mod expr;
mod loop_nest;
mod reference;
mod stmt;
mod validate;

pub use affine::AffineExpr;
pub use array::{AccessKind, ArrayDecl, ArrayId, ArrayRef};
pub use builder::{ExprHandle, KernelBuilder};
pub use error::IrError;
pub use expr::{BinOp, Expr, UnOp};
pub use loop_nest::{Kernel, Loop, LoopId, LoopNest};
pub use reference::{RefId, RefInfo, ReferenceTable};
pub use stmt::{Statement, StoreTarget};
pub use validate::validate_kernel;
