use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::affine::AffineExpr;
use crate::array::{AccessKind, ArrayId};
use crate::loop_nest::Kernel;

/// Identifier of a *reference group* within a kernel.
///
/// The allocation algorithms of the paper operate on array references such as `a[k]` or
/// `b[k][j]`: all textual occurrences of the same array with the same affine subscript
/// pattern form one group and receive one register budget `β`.  In the paper's Figure 1
/// example, `d[i][k]` occurs both as the target of the first statement and as an operand
/// of the second, yet it is a single reference with a single `β_d`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RefId(usize);

impl RefId {
    /// Creates a reference-group identifier from its index in the table.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the index of the group within its [`ReferenceTable`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for RefId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One textual occurrence of a reference group in the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Occurrence {
    /// Index of the statement in the body.
    pub statement: usize,
    /// Whether the occurrence reads or writes memory.
    pub access: AccessKind,
}

/// A reference group: an array plus a subscript pattern, with all its occurrences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefInfo {
    id: RefId,
    array: ArrayId,
    array_name: String,
    subscripts: Vec<AffineExpr>,
    occurrences: Vec<Occurrence>,
}

impl RefInfo {
    /// Identifier of the group.
    pub fn id(&self) -> RefId {
        self.id
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Name of the referenced array.
    pub fn array_name(&self) -> &str {
        &self.array_name
    }

    /// The common affine subscript pattern of every occurrence in the group.
    pub fn subscripts(&self) -> &[AffineExpr] {
        &self.subscripts
    }

    /// All textual occurrences, in body order.
    pub fn occurrences(&self) -> &[Occurrence] {
        &self.occurrences
    }

    /// Returns `true` if at least one occurrence reads memory.
    pub fn has_read(&self) -> bool {
        self.occurrences.iter().any(|o| o.access.is_read())
    }

    /// Returns `true` if at least one occurrence writes memory.
    pub fn has_write(&self) -> bool {
        self.occurrences.iter().any(|o| o.access.is_write())
    }

    /// Number of memory accesses the group performs per innermost iteration when no
    /// scalar replacement is applied (one per occurrence).
    pub fn accesses_per_iteration(&self) -> u64 {
        self.occurrences.len() as u64
    }

    /// Renders the reference as `name[sub]...` using the kernel's loop names.
    pub fn render(&self, loop_names: &[&str]) -> String {
        let mut out = self.array_name.clone();
        for sub in &self.subscripts {
            out.push('[');
            out.push_str(&sub.render(loop_names));
            out.push(']');
        }
        out
    }
}

/// The table of all reference groups of a kernel, in first-occurrence order.
///
/// Build one with [`Kernel::reference_table`].  The table preserves insertion order, so
/// [`RefId`]s are stable for a given kernel and the analyses downstream are
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReferenceTable {
    refs: Vec<RefInfo>,
}

impl ReferenceTable {
    /// Builds the reference table of a kernel.
    pub fn build(kernel: &Kernel) -> Self {
        let mut table = ReferenceTable::default();
        let mut index: HashMap<(ArrayId, Vec<AffineExpr>), RefId> = HashMap::new();
        for (stmt_idx, stmt) in kernel.nest().body().iter().enumerate() {
            for array_ref in stmt.array_refs() {
                let key = (array_ref.array(), array_ref.subscripts().to_vec());
                let id = *index.entry(key).or_insert_with(|| {
                    let id = RefId::new(table.refs.len());
                    let array_name = kernel
                        .array(array_ref.array())
                        .map(|a| a.name().to_owned())
                        .unwrap_or_else(|| array_ref.array().to_string());
                    table.refs.push(RefInfo {
                        id,
                        array: array_ref.array(),
                        array_name,
                        subscripts: array_ref.subscripts().to_vec(),
                        occurrences: Vec::new(),
                    });
                    id
                });
                table.refs[id.index()].occurrences.push(Occurrence {
                    statement: stmt_idx,
                    access: array_ref.access(),
                });
            }
        }
        table
    }

    /// Number of reference groups.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` when the kernel body contains no array references at all.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The group with the given identifier, if it exists.
    pub fn get(&self, id: RefId) -> Option<&RefInfo> {
        self.refs.get(id.index())
    }

    /// Iterates over the groups in first-occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = &RefInfo> {
        self.refs.iter()
    }

    /// All groups referencing the given array.
    pub fn by_array(&self, array: ArrayId) -> Vec<&RefInfo> {
        self.refs.iter().filter(|r| r.array() == array).collect()
    }

    /// Finds the group for an exact `(array, subscripts)` pattern.
    pub fn find(&self, array: ArrayId, subscripts: &[AffineExpr]) -> Option<&RefInfo> {
        self.refs
            .iter()
            .find(|r| r.array() == array && r.subscripts() == subscripts)
    }

    /// Finds a group by array *name* (useful in tests and reporting); returns the first
    /// group of that array.
    pub fn find_by_name(&self, name: &str) -> Option<&RefInfo> {
        self.refs.iter().find(|r| r.array_name() == name)
    }

    /// Total number of memory accesses per innermost iteration without replacement.
    pub fn accesses_per_iteration(&self) -> u64 {
        self.refs.iter().map(RefInfo::accesses_per_iteration).sum()
    }

    /// Identifiers of every group, in order.
    pub fn ids(&self) -> impl Iterator<Item = RefId> + '_ {
        (0..self.refs.len()).map(RefId::new)
    }
}

impl<'a> IntoIterator for &'a ReferenceTable {
    type Item = &'a RefInfo;
    type IntoIter = std::slice::Iter<'a, RefInfo>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_example;

    #[test]
    fn paper_example_has_five_reference_groups() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        assert_eq!(table.len(), 5);
        // Statement order with value reads before the target write:
        // stmt 0 contributes a, b, d; stmt 1 contributes c and e (d already seen).
        let names: Vec<&str> = table.iter().map(RefInfo::array_name).collect();
        assert_eq!(names, vec!["a", "b", "d", "c", "e"]);
    }

    #[test]
    fn d_reference_has_write_and_read_occurrences() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let d = table.find_by_name("d").expect("d reference");
        assert_eq!(d.occurrences().len(), 2);
        assert!(d.has_write());
        assert!(d.has_read());
        assert_eq!(d.accesses_per_iteration(), 2);
        assert_eq!(d.render(&["i", "j", "k"]), "d[i][k]");
    }

    #[test]
    fn single_occurrence_references_are_pure() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let a = table.find_by_name("a").unwrap();
        assert!(a.has_read());
        assert!(!a.has_write());
        let e = table.find_by_name("e").unwrap();
        assert!(e.has_write());
        assert!(!e.has_read());
    }

    #[test]
    fn accesses_per_iteration_counts_all_occurrences() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        // a, b, c reads + d write + d read + e write = 6
        assert_eq!(table.accesses_per_iteration(), 6);
    }

    #[test]
    fn lookup_helpers_agree() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        for info in table.iter() {
            assert_eq!(table.get(info.id()).unwrap(), info);
            assert_eq!(
                table.find(info.array(), info.subscripts()).unwrap().id(),
                info.id()
            );
        }
        assert_eq!(table.ids().count(), table.len());
        assert!(!table.is_empty());
    }
}
