use serde::{Deserialize, Serialize};

use crate::array::ArrayRef;
use crate::loop_nest::LoopId;

/// Binary operators appearing in loop-body expressions.
///
/// The set covers everything the six evaluation kernels need (arithmetic, comparison,
/// min/max selection and bitwise operations for the binary-image-correlation kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Equality comparison (result is 0 or 1).
    CmpEq,
    /// Inequality comparison (result is 0 or 1).
    CmpNe,
    /// Less-than comparison (result is 0 or 1).
    CmpLt,
    /// Greater-than comparison (result is 0 or 1).
    CmpGt,
}

impl BinOp {
    /// Short mnemonic used in data-flow-graph labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpNe => "cmpne",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpGt => "cmpgt",
        }
    }

    /// Infix symbol used when pretty-printing the body as pseudo-C.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::CmpEq => "==",
            BinOp::CmpNe => "!=",
            BinOp::CmpLt => "<",
            BinOp::CmpGt => ">",
        }
    }

    /// Returns `true` for operators whose result only depends on the operand set, not
    /// on their order.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Min
                | BinOp::Max
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::CmpEq
                | BinOp::CmpNe
        )
    }

    /// All binary operators, useful for property tests and latency tables.
    pub fn all() -> [BinOp; 13] {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::CmpEq,
            BinOp::CmpNe,
            BinOp::CmpLt,
            BinOp::CmpGt,
        ]
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary operators appearing in loop-body expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Absolute value.
    Abs,
}

impl UnOp {
    /// Short mnemonic used in data-flow-graph labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
        }
    }
}

impl std::fmt::Display for UnOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A loop-body expression tree.
///
/// Expressions are pure: all side effects (array stores) happen through
/// [`crate::Statement`] targets.  Scalar operands are named temporaries that carry
/// values between statements of the same iteration (for instance the value written to
/// `d[i][k]` in the paper's example is also consumed by the second statement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A read (or, rarely, the value produced by a write) of an array element.
    ArrayAccess(ArrayRef),
    /// A named scalar temporary defined by an earlier statement in the same iteration.
    Scalar(String),
    /// The current value of a loop induction variable.
    LoopIndex(LoopId),
    /// An integer literal.
    IntConst(i64),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an array access operand.
    pub fn array(array_ref: ArrayRef) -> Self {
        Expr::ArrayAccess(array_ref)
    }

    /// Convenience constructor for a named scalar operand.
    pub fn scalar(name: impl Into<String>) -> Self {
        Expr::Scalar(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(value: i64) -> Self {
        Expr::IntConst(value)
    }

    /// Convenience constructor for a loop-index operand.
    pub fn index(loop_id: LoopId) -> Self {
        Expr::LoopIndex(loop_id)
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for `lhs + rhs`.
    ///
    /// Not `std::ops::Add`: this is an associated constructor taking both
    /// operands by value, not a method on `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Self {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// Convenience constructor for `lhs * rhs`.
    ///
    /// Not `std::ops::Mul`: this is an associated constructor taking both
    /// operands by value, not a method on `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Self {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// Convenience constructor for a unary operation.
    pub fn unary(op: UnOp, operand: Expr) -> Self {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    /// Visits every node of the expression tree in post-order.
    pub fn visit<'a>(&'a self, visitor: &mut impl FnMut(&'a Expr)) {
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(visitor);
                rhs.visit(visitor);
            }
            Expr::Unary { operand, .. } => operand.visit(visitor),
            _ => {}
        }
        visitor(self);
    }

    /// Collects every array reference in the expression, in post-order.
    pub fn array_refs(&self) -> Vec<&ArrayRef> {
        let mut refs = Vec::new();
        self.visit(&mut |node| {
            if let Expr::ArrayAccess(r) = node {
                refs.push(r);
            }
        });
        refs
    }

    /// Number of operation nodes (binary + unary) in the expression.
    pub fn operation_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |node| {
            if matches!(node, Expr::Binary { .. } | Expr::Unary { .. }) {
                count += 1;
            }
        });
        count
    }

    /// Names of scalar temporaries consumed by this expression.
    pub fn scalar_uses(&self) -> Vec<&str> {
        let mut names = Vec::new();
        self.visit(&mut |node| {
            if let Expr::Scalar(name) = node {
                names.push(name.as_str());
            }
        });
        names
    }

    /// Depth of the expression tree (a single operand has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.depth().max(rhs.depth()),
            Expr::Unary { operand, .. } => 1 + operand.depth(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{AccessKind, ArrayId};
    use crate::AffineExpr;

    fn sample_ref(array: usize) -> ArrayRef {
        ArrayRef::new(
            ArrayId::new(array),
            vec![AffineExpr::index(LoopId::new(0))],
            AccessKind::Read,
        )
    }

    #[test]
    fn binop_metadata_is_consistent() {
        for op in BinOp::all() {
            assert!(!op.mnemonic().is_empty());
            assert!(!op.symbol().is_empty());
            assert_eq!(op.to_string(), op.mnemonic());
        }
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
        assert!(BinOp::Xor.is_commutative());
    }

    #[test]
    fn unop_mnemonics() {
        assert_eq!(UnOp::Neg.to_string(), "neg");
        assert_eq!(UnOp::Not.mnemonic(), "not");
        assert_eq!(UnOp::Abs.mnemonic(), "abs");
    }

    #[test]
    fn array_refs_are_collected_in_post_order() {
        let e = Expr::add(
            Expr::mul(Expr::array(sample_ref(0)), Expr::array(sample_ref(1))),
            Expr::array(sample_ref(2)),
        );
        let refs = e.array_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].array(), ArrayId::new(0));
        assert_eq!(refs[1].array(), ArrayId::new(1));
        assert_eq!(refs[2].array(), ArrayId::new(2));
    }

    #[test]
    fn operation_count_and_depth() {
        let e = Expr::add(
            Expr::mul(Expr::array(sample_ref(0)), Expr::int(3)),
            Expr::unary(UnOp::Abs, Expr::scalar("t")),
        );
        assert_eq!(e.operation_count(), 3);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.scalar_uses(), vec!["t"]);
    }

    #[test]
    fn leaves_have_depth_one_and_no_ops() {
        for leaf in [
            Expr::int(4),
            Expr::scalar("x"),
            Expr::index(LoopId::new(1)),
            Expr::array(sample_ref(0)),
        ] {
            assert_eq!(leaf.depth(), 1);
            assert_eq!(leaf.operation_count(), 0);
        }
    }
}
