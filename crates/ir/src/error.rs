use std::fmt;

/// Errors produced while constructing or validating IR entities.
///
/// Every fallible public function in this crate returns `Result<_, IrError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A loop was declared with a non-positive trip count.
    EmptyLoop {
        /// Name of the offending loop.
        loop_name: String,
    },
    /// A loop nest was built with no loops at all.
    NoLoops,
    /// A loop nest was built with an empty body.
    EmptyBody,
    /// An array was declared with no dimensions or a zero-sized dimension.
    InvalidArrayShape {
        /// Name of the offending array.
        array: String,
    },
    /// A reference subscript count does not match the array's declared rank.
    RankMismatch {
        /// Name of the referenced array.
        array: String,
        /// Declared rank of the array.
        declared: usize,
        /// Number of subscripts used by the reference.
        used: usize,
    },
    /// An affine subscript mentions a loop that does not exist in the nest.
    UnknownLoop {
        /// The loop index that was referenced.
        loop_id: usize,
        /// Depth of the nest.
        depth: usize,
    },
    /// A reference mentions an array that was never declared.
    UnknownArray {
        /// The array index that was referenced.
        array_id: usize,
    },
    /// Duplicate array name within one kernel.
    DuplicateArray {
        /// The clashing name.
        name: String,
    },
    /// Duplicate loop name within one kernel.
    DuplicateLoop {
        /// The clashing name.
        name: String,
    },
    /// A subscript can evaluate outside the declared array bounds.
    SubscriptOutOfBounds {
        /// Name of the referenced array.
        array: String,
        /// Dimension at which the violation occurs.
        dimension: usize,
        /// The extreme subscript value reached.
        value: i64,
        /// The declared extent of that dimension.
        extent: u64,
    },
    /// An expression handle from a different builder was used.
    ForeignHandle,
    /// The kernel name is empty.
    EmptyName,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyLoop { loop_name } => {
                write!(f, "loop `{loop_name}` has a non-positive trip count")
            }
            IrError::NoLoops => write!(f, "loop nest contains no loops"),
            IrError::EmptyBody => write!(f, "loop nest body is empty"),
            IrError::InvalidArrayShape { array } => {
                write!(f, "array `{array}` has an invalid shape")
            }
            IrError::RankMismatch {
                array,
                declared,
                used,
            } => write!(
                f,
                "array `{array}` has rank {declared} but is referenced with {used} subscripts"
            ),
            IrError::UnknownLoop { loop_id, depth } => write!(
                f,
                "subscript references loop {loop_id} but the nest depth is {depth}"
            ),
            IrError::UnknownArray { array_id } => {
                write!(f, "reference to undeclared array id {array_id}")
            }
            IrError::DuplicateArray { name } => {
                write!(f, "array `{name}` declared more than once")
            }
            IrError::DuplicateLoop { name } => write!(f, "loop `{name}` declared more than once"),
            IrError::SubscriptOutOfBounds {
                array,
                dimension,
                value,
                extent,
            } => write!(
                f,
                "subscript of `{array}` dimension {dimension} reaches {value}, outside extent {extent}"
            ),
            IrError::ForeignHandle => {
                write!(f, "expression handle does not belong to this builder")
            }
            IrError::EmptyName => write!(f, "kernel name must not be empty"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<IrError> = vec![
            IrError::EmptyLoop {
                loop_name: "i".into(),
            },
            IrError::NoLoops,
            IrError::EmptyBody,
            IrError::InvalidArrayShape { array: "a".into() },
            IrError::RankMismatch {
                array: "a".into(),
                declared: 2,
                used: 1,
            },
            IrError::UnknownLoop {
                loop_id: 4,
                depth: 2,
            },
            IrError::UnknownArray { array_id: 9 },
            IrError::DuplicateArray { name: "a".into() },
            IrError::DuplicateLoop { name: "i".into() },
            IrError::SubscriptOutOfBounds {
                array: "a".into(),
                dimension: 0,
                value: 70,
                extent: 64,
            },
            IrError::ForeignHandle,
            IrError::EmptyName,
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
    }
}
