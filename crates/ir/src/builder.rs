use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::affine::AffineExpr;
use crate::array::{AccessKind, ArrayDecl, ArrayId, ArrayRef};
use crate::error::IrError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::loop_nest::{Kernel, Loop, LoopId, LoopNest};
use crate::stmt::{Statement, StoreTarget};

static BUILDER_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Handle to an expression under construction inside a [`KernelBuilder`].
///
/// Handles are cheap to copy and only valid for the builder that created them; using a
/// handle with a different builder is detected and reported as
/// [`IrError::ForeignHandle`] when [`KernelBuilder::build`] is called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprHandle {
    index: usize,
    builder: u64,
}

/// Fluent builder for [`Kernel`]s.
///
/// The builder owns an expression arena behind interior mutability, so nested
/// construction such as `b.mul(b.read(a, ..), b.read(x, ..))` reads naturally, and all
/// validation is deferred to [`KernelBuilder::build`], which runs the full
/// [`crate::validate_kernel`] checks.
///
/// # Example
///
/// ```
/// use srra_ir::KernelBuilder;
///
/// # fn main() -> Result<(), srra_ir::IrError> {
/// // for (i) for (j): c[i] = c[i] + a[i][j] * x[j]
/// let b = KernelBuilder::new("matvec");
/// let i = b.add_loop("i", 16);
/// let j = b.add_loop("j", 16);
/// let a = b.add_array("a", &[16, 16], 16);
/// let x = b.add_array("x", &[16], 16);
/// let c = b.add_array("c", &[16], 32);
/// let prod = b.mul(b.read(a, &[b.idx(i), b.idx(j)]), b.read(x, &[b.idx(j)]));
/// let sum = b.add(b.read(c, &[b.idx(i)]), prod);
/// b.store(c, &[b.idx(i)], sum);
/// let kernel = b.build()?;
/// assert_eq!(kernel.nest().depth(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    id: u64,
    name: String,
    loops: RefCell<Vec<Loop>>,
    arrays: RefCell<Vec<ArrayDecl>>,
    arena: RefCell<Vec<Expr>>,
    statements: RefCell<Vec<Statement>>,
    deferred_error: RefCell<Option<IrError>>,
}

impl KernelBuilder {
    /// Creates a builder for a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            id: BUILDER_COUNTER.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            loops: RefCell::new(Vec::new()),
            arrays: RefCell::new(Vec::new()),
            arena: RefCell::new(Vec::new()),
            statements: RefCell::new(Vec::new()),
            deferred_error: RefCell::new(None),
        }
    }

    /// Appends a loop to the nest (the first call creates the outermost loop).
    pub fn add_loop(&self, name: impl Into<String>, trip_count: u64) -> LoopId {
        let mut loops = self.loops.borrow_mut();
        let id = LoopId::new(loops.len());
        loops.push(Loop::new(name, trip_count));
        id
    }

    /// Declares an array variable.
    pub fn add_array(&self, name: impl Into<String>, dims: &[u64], elem_bits: u32) -> ArrayId {
        let mut arrays = self.arrays.borrow_mut();
        let id = ArrayId::new(arrays.len());
        arrays.push(ArrayDecl::new(name, dims.to_vec(), elem_bits));
        id
    }

    /// Affine subscript equal to a loop index.
    pub fn idx(&self, loop_id: LoopId) -> AffineExpr {
        AffineExpr::index(loop_id)
    }

    /// Affine subscript equal to `scale * loop + offset` (e.g. the decimated index of
    /// the Dec-FIR kernel).
    pub fn scaled_idx(&self, loop_id: LoopId, scale: i64, offset: i64) -> AffineExpr {
        AffineExpr::zero()
            .with_term(loop_id, scale)
            .with_constant(offset)
    }

    /// Affine subscript equal to the sum of two loop indices (sliding-window access).
    pub fn idx_sum(&self, a: LoopId, b: LoopId) -> AffineExpr {
        AffineExpr::index(a).with_term(b, 1)
    }

    /// Constant affine subscript.
    pub fn constant(&self, value: i64) -> AffineExpr {
        AffineExpr::constant(value)
    }

    fn push(&self, expr: Expr) -> ExprHandle {
        let mut arena = self.arena.borrow_mut();
        let index = arena.len();
        arena.push(expr);
        ExprHandle {
            index,
            builder: self.id,
        }
    }

    fn resolve(&self, handle: ExprHandle) -> Expr {
        if handle.builder != self.id || handle.index >= self.arena.borrow().len() {
            self.deferred_error
                .borrow_mut()
                .get_or_insert(IrError::ForeignHandle);
            return Expr::IntConst(0);
        }
        self.arena.borrow()[handle.index].clone()
    }

    /// A read of `array` at the given affine subscripts.
    pub fn read(&self, array: ArrayId, subscripts: &[AffineExpr]) -> ExprHandle {
        self.push(Expr::ArrayAccess(ArrayRef::new(
            array,
            subscripts.to_vec(),
            AccessKind::Read,
        )))
    }

    /// An integer literal operand.
    pub fn int(&self, value: i64) -> ExprHandle {
        self.push(Expr::IntConst(value))
    }

    /// A use of a scalar temporary defined by an earlier [`KernelBuilder::define`].
    pub fn scalar(&self, name: impl Into<String>) -> ExprHandle {
        self.push(Expr::Scalar(name.into()))
    }

    /// The current value of a loop induction variable as an operand.
    pub fn loop_index(&self, loop_id: LoopId) -> ExprHandle {
        self.push(Expr::LoopIndex(loop_id))
    }

    /// A binary operation over two previously built expressions.
    pub fn binary(&self, op: BinOp, lhs: ExprHandle, rhs: ExprHandle) -> ExprHandle {
        let lhs = self.resolve(lhs);
        let rhs = self.resolve(rhs);
        self.push(Expr::binary(op, lhs, rhs))
    }

    /// Shorthand for [`BinOp::Add`].
    pub fn add(&self, lhs: ExprHandle, rhs: ExprHandle) -> ExprHandle {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// Shorthand for [`BinOp::Sub`].
    pub fn sub(&self, lhs: ExprHandle, rhs: ExprHandle) -> ExprHandle {
        self.binary(BinOp::Sub, lhs, rhs)
    }

    /// Shorthand for [`BinOp::Mul`].
    pub fn mul(&self, lhs: ExprHandle, rhs: ExprHandle) -> ExprHandle {
        self.binary(BinOp::Mul, lhs, rhs)
    }

    /// A unary operation over a previously built expression.
    pub fn unary(&self, op: UnOp, operand: ExprHandle) -> ExprHandle {
        let operand = self.resolve(operand);
        self.push(Expr::unary(op, operand))
    }

    /// Appends a statement storing `value` into `array[subscripts]`.
    pub fn store(&self, array: ArrayId, subscripts: &[AffineExpr], value: ExprHandle) {
        let value = self.resolve(value);
        self.statements.borrow_mut().push(Statement::new(
            StoreTarget::Array(ArrayRef::new(array, subscripts.to_vec(), AccessKind::Write)),
            value,
        ));
    }

    /// Appends a statement defining a scalar temporary usable by later statements.
    pub fn define(&self, name: impl Into<String>, value: ExprHandle) {
        let value = self.resolve(value);
        self.statements
            .borrow_mut()
            .push(Statement::new(StoreTarget::Scalar(name.into()), value));
    }

    /// Number of statements added so far.
    pub fn statement_count(&self) -> usize {
        self.statements.borrow().len()
    }

    /// Finalises the kernel, running full validation.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ForeignHandle`] if a handle from another builder was used, or
    /// any error from [`crate::validate_kernel`].
    pub fn build(self) -> Result<Kernel, IrError> {
        if let Some(err) = self.deferred_error.into_inner() {
            return Err(err);
        }
        let nest = LoopNest::new(self.loops.into_inner(), self.statements.into_inner())?;
        Kernel::new(self.name, self.arrays.into_inner(), nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_two_statement_kernel() {
        let b = KernelBuilder::new("example");
        let i = b.add_loop("i", 2);
        let k = b.add_loop("k", 4);
        let a = b.add_array("a", &[4], 16);
        let d = b.add_array("d", &[2, 4], 16);
        let prod = b.mul(b.read(a, &[b.idx(k)]), b.int(3));
        b.store(d, &[b.idx(i), b.idx(k)], prod);
        let sum = b.add(b.read(d, &[b.idx(i), b.idx(k)]), b.int(1));
        b.define("t", sum);
        assert_eq!(b.statement_count(), 2);
        let kernel = b.build().unwrap();
        assert_eq!(kernel.nest().body().len(), 2);
        assert_eq!(kernel.reference_table().len(), 2);
    }

    #[test]
    fn foreign_handles_are_rejected_at_build_time() {
        let other = KernelBuilder::new("other");
        let foreign = other.int(1);

        let b = KernelBuilder::new("victim");
        let i = b.add_loop("i", 4);
        let a = b.add_array("a", &[4], 16);
        let use_foreign = b.add(foreign, b.int(2));
        b.store(a, &[b.idx(i)], use_foreign);
        assert_eq!(b.build().unwrap_err(), IrError::ForeignHandle);
    }

    #[test]
    fn affine_helpers() {
        let b = KernelBuilder::new("h");
        let l0 = LoopId::new(0);
        let l1 = LoopId::new(1);
        assert_eq!(b.idx(l0), AffineExpr::index(l0));
        assert_eq!(b.constant(5), AffineExpr::constant(5));
        let scaled = b.scaled_idx(l0, 4, 1);
        assert_eq!(scaled.coefficient(l0), 4);
        assert_eq!(scaled.constant_term(), 1);
        let sum = b.idx_sum(l0, l1);
        assert_eq!(sum.coefficient(l0), 1);
        assert_eq!(sum.coefficient(l1), 1);
    }

    #[test]
    fn build_propagates_validation_errors() {
        let b = KernelBuilder::new("bad");
        let i = b.add_loop("i", 8);
        let a = b.add_array("a", &[4], 16); // too small for i in 0..8
        let v = b.read(a, &[b.idx(i)]);
        b.define("t", v);
        assert!(matches!(
            b.build().unwrap_err(),
            IrError::SubscriptOutOfBounds { .. }
        ));
    }

    #[test]
    fn unary_and_loop_index_operands() {
        let b = KernelBuilder::new("u");
        let i = b.add_loop("i", 4);
        let a = b.add_array("a", &[4], 16);
        let neg = b.unary(UnOp::Neg, b.loop_index(i));
        b.store(a, &[b.idx(i)], neg);
        let kernel = b.build().unwrap();
        assert_eq!(kernel.nest().body()[0].operation_count(), 1);
    }
}
