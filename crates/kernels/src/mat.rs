//! Dense matrix–matrix multiplication kernel (MAT).
//!
//! ```c
//! for (i = 0; i < N; i++)
//!   for (j = 0; j < N; j++)
//!     for (k = 0; k < N; k++)
//!       c[i][j] = c[i][j] + a[i][k] * b[k][j];
//! ```
//!
//! `a[i][k]` carries reuse at the `j` loop (`R = N`), `b[k][j]` at the `i` loop
//! (`R = N²`) and the accumulator `c[i][j]` at the innermost `k` loop (`R = 1`).

use srra_ir::{IrError, Kernel, KernelBuilder};

/// Builds an `n × n` matrix-multiplication kernel.
///
/// # Errors
///
/// Returns an [`IrError`] when `n` is zero.
pub fn mat(n: u64) -> Result<Kernel, IrError> {
    let b = KernelBuilder::new("mat");
    let i = b.add_loop("i", n);
    let j = b.add_loop("j", n);
    let k = b.add_loop("k", n);
    let a = b.add_array("a", &[n.max(1), n.max(1)], 16);
    let bm = b.add_array("b", &[n.max(1), n.max(1)], 16);
    let c = b.add_array("c", &[n.max(1), n.max(1)], 32);

    let product = b.mul(
        b.read(a, &[b.idx(i), b.idx(k)]),
        b.read(bm, &[b.idx(k), b.idx(j)]),
    );
    let acc = b.add(b.read(c, &[b.idx(i), b.idx(j)]), product);
    b.store(c, &[b.idx(i), b.idx(j)], acc);
    b.build()
}

/// The paper's problem size: 32 × 32 matrices.
///
/// # Errors
///
/// Never fails for this constant; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    mat(32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds_as_a_three_deep_nest() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 3);
        assert_eq!(kernel.nest().total_iterations(), 32 * 32 * 32);
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn register_requirements_follow_the_classic_pattern() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("a").unwrap().registers_full(), 32);
        assert_eq!(analysis.by_name("b").unwrap().registers_full(), 1_024);
        assert_eq!(analysis.by_name("c").unwrap().registers_full(), 1);
        assert!(analysis.by_name("c").unwrap().has_reuse());
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(mat(0).is_err());
    }

    #[test]
    fn small_instances_scale_the_requirements() {
        let kernel = mat(8).unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("a").unwrap().registers_full(), 8);
        assert_eq!(analysis.by_name("b").unwrap().registers_full(), 64);
    }
}
