//! Finite-Impulse-Response (FIR) filter kernel.
//!
//! ```c
//! for (i = 0; i < N_OUT; i++)
//!   for (j = 0; j < TAPS; j++)
//!     y[i] = y[i] + c[j] * x[i + j];
//! ```
//!
//! The coefficient vector `c[j]` is invariant with respect to the outer loop and is the
//! prime scalar-replacement target (`R = TAPS` registers); the sliding window `x[i+j]`
//! only exhibits group reuse between shifted references, and the accumulator `y[i]`
//! needs a single register.

use srra_ir::{IrError, Kernel, KernelBuilder};

/// Builds a FIR kernel for an `input_len`-sample signal and `taps` coefficients.
///
/// # Errors
///
/// Returns an [`IrError`] when the parameters do not describe a valid kernel (for
/// example `taps >= input_len` or a zero dimension).
pub fn fir(input_len: u64, taps: u64) -> Result<Kernel, IrError> {
    let n_out = input_len.saturating_sub(taps);
    let b = KernelBuilder::new("fir");
    let i = b.add_loop("i", n_out);
    let j = b.add_loop("j", taps.max(1));
    let x = b.add_array("x", &[input_len.max(1)], 16);
    let c = b.add_array("c", &[taps.max(1)], 16);
    let y = b.add_array("y", &[n_out.max(1)], 32);

    let product = b.mul(b.read(c, &[b.idx(j)]), b.read(x, &[b.idx_sum(i, j)]));
    let acc = b.add(b.read(y, &[b.idx(i)]), product);
    b.store(y, &[b.idx(i)], acc);
    b.build()
}

/// The paper's problem size: a 4,096-sample input convolved with 32 coefficients.
///
/// # Errors
///
/// Never fails for these constants; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    fir(4_096, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds_and_has_three_reference_groups() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 2);
        assert_eq!(kernel.nest().trip_counts(), vec![4_064, 32]);
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn coefficient_vector_is_the_main_reuse_target() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        let c = analysis.by_name("c").unwrap();
        assert_eq!(c.registers_full(), 32);
        assert!(c.has_reuse());
        // The sliding window carries reuse across the output loop: one tap-sized window
        // of rotating registers captures it.
        let x = analysis.by_name("x").unwrap();
        assert_eq!(x.registers_full(), 32);
        assert!(x.has_reuse());
        // The accumulator needs one register and has reuse across the tap loop.
        let y = analysis.by_name("y").unwrap();
        assert_eq!(y.registers_full(), 1);
        assert!(y.has_reuse());
    }

    #[test]
    fn small_instances_are_valid_too() {
        let kernel = fir(64, 8).unwrap();
        assert_eq!(kernel.nest().trip_counts(), vec![56, 8]);
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(fir(8, 8).is_err());
        assert!(fir(4, 8).is_err());
    }
}
