//! The six signal/image-processing kernels evaluated in the paper's Table 1.
//!
//! Each kernel module provides a parameterised constructor plus a `paper()` function
//! that instantiates the problem size used in the evaluation:
//!
//! | Kernel | Computation | Paper size | Nest depth |
//! |--------|-------------|------------|------------|
//! | [`fir`] | FIR filter (convolution) | 4,096-sample input, 32 taps | 2 |
//! | [`dec_fir`] | Decimating FIR filter | 4,096-sample input, 64 taps, decimation 4 | 2 |
//! | [`mat`] | Matrix–matrix multiply | 32 × 32 | 3 |
//! | [`imi`] | Image interpolation | two 64 × 64 images, 16 steps | 2 (+ outer step loop) |
//! | [`pat`] | String pattern matching | 16-character pattern in a 4,096 string | 2 |
//! | [`bic`] | Binary image correlation | 8 × 8 template over a 64 × 64 image | 4 |
//!
//! [`paper_suite`] returns all six with the register budget the paper imposes
//! ([`PAPER_REGISTER_BUDGET`]), ready for the Table 1 harness in `srra-bench`.
//!
//! ```
//! use srra_kernels::paper_suite;
//!
//! let suite = paper_suite();
//! assert_eq!(suite.len(), 6);
//! assert!(suite.iter().any(|spec| spec.kernel.name() == "mat"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bic;
pub mod dec_fir;
pub mod fir;
pub mod imi;
pub mod mat;
pub mod pat;

use srra_core::CompiledKernel;
use srra_ir::{IrError, Kernel};

/// The register-file limit the paper imposes on every implementation ("a maximum limit
/// of 32 registers each implementation uses to capture data reuse").
pub const PAPER_REGISTER_BUDGET: u64 = 32;

/// One benchmark kernel together with its evaluation metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// The kernel itself.
    pub kernel: Kernel,
    /// One-line description used in reports.
    pub description: &'static str,
    /// Register budget to evaluate the kernel with.
    pub register_budget: u64,
}

impl KernelSpec {
    /// The kernel wrapped in a fresh [`CompiledKernel`] analysis context.
    ///
    /// Callers evaluating several strategies or budgets should hold on to the
    /// returned context so its memoized reuse analysis is shared.
    pub fn compiled(&self) -> CompiledKernel {
        CompiledKernel::new(self.kernel.clone())
    }
}

/// The six paper kernels as [`CompiledKernel`] contexts, ready for a registry
/// sweep that analyses each kernel exactly once.
pub fn compiled_paper_suite() -> Vec<CompiledKernel> {
    paper_suite()
        .into_iter()
        .map(|spec| spec.compiled())
        .collect()
}

/// Builds the full six-kernel evaluation suite at the paper's problem sizes.
///
/// # Panics
///
/// Never panics: the paper-sized constructions are statically valid (covered by tests).
pub fn paper_suite() -> Vec<KernelSpec> {
    fn spec(kernel: Result<Kernel, IrError>, description: &'static str) -> KernelSpec {
        KernelSpec {
            kernel: kernel.expect("paper-sized kernel is valid"),
            description,
            register_budget: PAPER_REGISTER_BUDGET,
        }
    }
    vec![
        spec(fir::paper(), "FIR filter: 4096-sample input, 32 taps"),
        spec(
            dec_fir::paper(),
            "Decimating FIR filter: 4096-sample input, 64 taps, decimation 4",
        ),
        spec(mat::paper(), "Matrix-matrix multiply: 32 x 32"),
        spec(
            imi::paper(),
            "Image interpolation: two 64 x 64 images, 16 steps",
        ),
        spec(
            pat::paper(),
            "Pattern matching: 16-char pattern in a 4096 string",
        ),
        spec(
            bic::paper(),
            "Binary image correlation: 8 x 8 template over a 64 x 64 image",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_valid_kernels_with_the_paper_budget() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|s| s.kernel.name()).collect();
        assert_eq!(names, vec!["fir", "dec_fir", "mat", "imi", "pat", "bic"]);
        for spec in &suite {
            assert_eq!(spec.register_budget, 32);
            assert!(!spec.description.is_empty());
            assert!(!spec.kernel.reference_table().is_empty());
        }
    }

    #[test]
    fn nest_depths_match_the_paper_description() {
        let suite = paper_suite();
        let depth = |name: &str| {
            suite
                .iter()
                .find(|s| s.kernel.name() == name)
                .unwrap()
                .kernel
                .nest()
                .depth()
        };
        // "With the exception of MAT and BIC, which are structured as 3- and 4-deep
        // nested loops respectively, all kernels are structured as 2-deep loop nests"
        // (the IMI step loop is folded into the 3-deep variant we evaluate).
        assert_eq!(depth("mat"), 3);
        assert_eq!(depth("bic"), 4);
        assert_eq!(depth("fir"), 2);
        assert_eq!(depth("dec_fir"), 2);
        assert_eq!(depth("pat"), 2);
        assert_eq!(depth("imi"), 3);
    }
}
