//! Binary image correlation kernel (BIC).
//!
//! ```c
//! for (r = 0; r < M - T; r++)
//!   for (c = 0; c < M - T; c++)
//!     for (u = 0; u < T; u++)
//!       for (v = 0; v < T; v++)
//!         corr[r][c] = corr[r][c] + (img[r + u][c + v] == tmpl[u][v]);
//! ```
//!
//! A four-deep nest: the template is invariant with respect to both position loops and
//! needs `T²` registers for full replacement, the image window slides in two
//! dimensions, and the per-position correlation accumulates over the template loops.

use srra_ir::{BinOp, IrError, Kernel, KernelBuilder};

/// Builds a binary-image-correlation kernel for an `image_size × image_size` image and
/// a `template_size × template_size` template.
///
/// # Errors
///
/// Returns an [`IrError`] when the template does not fit the image or a size is zero.
pub fn bic(image_size: u64, template_size: u64) -> Result<Kernel, IrError> {
    let positions = image_size.saturating_sub(template_size);
    let b = KernelBuilder::new("bic");
    let r = b.add_loop("r", positions);
    let c = b.add_loop("c", positions);
    let u = b.add_loop("u", template_size.max(1));
    let v = b.add_loop("v", template_size.max(1));
    let img = b.add_array("img", &[image_size.max(1), image_size.max(1)], 1);
    let tmpl = b.add_array("tmpl", &[template_size.max(1), template_size.max(1)], 1);
    let corr = b.add_array("corr", &[positions.max(1), positions.max(1)], 16);

    let matches = b.binary(
        BinOp::CmpEq,
        b.read(img, &[b.idx_sum(r, u), b.idx_sum(c, v)]),
        b.read(tmpl, &[b.idx(u), b.idx(v)]),
    );
    let acc = b.add(b.read(corr, &[b.idx(r), b.idx(c)]), matches);
    b.store(corr, &[b.idx(r), b.idx(c)], acc);
    b.build()
}

/// The paper's problem size: an 8 × 8 template correlated over a 64 × 64 image.
///
/// # Errors
///
/// Never fails for these constants; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    bic(64, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds_as_a_four_deep_nest() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 4);
        assert_eq!(kernel.nest().trip_counts(), vec![56, 56, 8, 8]);
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn template_needs_its_full_footprint_in_registers() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("tmpl").unwrap().registers_full(), 64);
        // The image window slides in both position dimensions; capturing the reuse
        // carried by the row loop needs the (template rows) x (image row span)
        // footprint of one row position: 8 x 63 = 504 registers.
        assert_eq!(analysis.by_name("img").unwrap().registers_full(), 504);
        // The correlation accumulator carries its value across the template loops.
        let corr = analysis.by_name("corr").unwrap();
        assert_eq!(corr.registers_full(), 1);
        assert!(corr.has_reuse());
    }

    #[test]
    fn one_bit_elements_keep_the_register_cost_low() {
        let kernel = paper().unwrap();
        assert_eq!(
            kernel
                .arrays()
                .iter()
                .find(|a| a.name() == "tmpl")
                .unwrap()
                .elem_bits(),
            1
        );
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        assert!(bic(8, 8).is_err());
        assert!(bic(4, 8).is_err());
    }
}
