//! Decimating FIR filter kernel (Dec-FIR).
//!
//! ```c
//! for (i = 0; i < N_OUT; i++)
//!   for (j = 0; j < TAPS; j++)
//!     y[i] = y[i] + c[j] * x[DEC * i + j];
//! ```
//!
//! Identical to [`crate::fir`] except that the window advances by the decimation factor
//! `DEC` between outputs, which shows up as a non-unit coefficient in the `x` subscript
//! (the loop itself stays normalised).

use srra_ir::{IrError, Kernel, KernelBuilder};

/// Builds a decimating FIR kernel.
///
/// # Errors
///
/// Returns an [`IrError`] when the parameters do not describe a valid kernel (for
/// example when `decimation` is zero or the window overruns the input).
pub fn dec_fir(input_len: u64, taps: u64, decimation: u64) -> Result<Kernel, IrError> {
    let dec = decimation.max(1);
    let n_out = input_len.saturating_sub(taps) / dec;
    let b = KernelBuilder::new("dec_fir");
    let i = b.add_loop("i", n_out);
    let j = b.add_loop("j", taps.max(1));
    let x = b.add_array("x", &[input_len.max(1)], 16);
    let c = b.add_array("c", &[taps.max(1)], 16);
    let y = b.add_array("y", &[n_out.max(1)], 32);

    let window = b.scaled_idx(i, dec as i64, 0).with_term(j, 1);
    let product = b.mul(b.read(c, &[b.idx(j)]), b.read(x, &[window]));
    let acc = b.add(b.read(y, &[b.idx(i)]), product);
    b.store(y, &[b.idx(i)], acc);
    b.build()
}

/// The paper's problem size: 4,096 samples, 64 taps, decimation factor 4.
///
/// # Errors
///
/// Never fails for these constants; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    dec_fir(4_096, 64, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 2);
        assert_eq!(kernel.nest().trip_counts(), vec![1_008, 64]);
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn coefficients_need_64_registers() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("c").unwrap().registers_full(), 64);
        // The decimated window still overlaps between outputs (stride 4 < 64 taps), so
        // it needs a full tap-sized window of registers as well.
        assert_eq!(analysis.by_name("x").unwrap().registers_full(), 64);
    }

    #[test]
    fn decimated_subscript_uses_the_right_stride() {
        let kernel = dec_fir(128, 8, 4).unwrap();
        let table = kernel.reference_table();
        let x = table.find_by_name("x").unwrap();
        let subscript = &x.subscripts()[0];
        assert_eq!(subscript.coefficient(srra_ir::LoopId::new(0)), 4);
        assert_eq!(subscript.coefficient(srra_ir::LoopId::new(1)), 1);
    }

    #[test]
    fn zero_decimation_is_clamped_to_one() {
        let kernel = dec_fir(64, 8, 0).unwrap();
        assert_eq!(kernel.nest().trip_counts(), vec![56, 8]);
    }
}
