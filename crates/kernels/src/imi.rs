//! Image interpolation kernel (IMI).
//!
//! ```c
//! for (s = 0; s < STEPS; s++)
//!   for (i = 0; i < M; i++)
//!     for (j = 0; j < M; j++)
//!       out[s][i][j] = img1[i][j] + (s * (img2[i][j] - img1[i][j])) / STEPS;
//! ```
//!
//! Both source images are invariant with respect to the interpolation-step loop, so a
//! full replacement of either needs `M²` registers — far more than any realistic
//! register file, which makes IMI the kernel where partial replacement and
//! critical-path awareness matter most.

use srra_ir::{BinOp, IrError, Kernel, KernelBuilder};

/// Builds an image-interpolation kernel over two `size × size` images and `steps`
/// intermediate images.
///
/// # Errors
///
/// Returns an [`IrError`] when `size` or `steps` is zero.
pub fn imi(size: u64, steps: u64) -> Result<Kernel, IrError> {
    let b = KernelBuilder::new("imi");
    let s = b.add_loop("s", steps);
    let i = b.add_loop("i", size);
    let j = b.add_loop("j", size);
    let img1 = b.add_array("img1", &[size.max(1), size.max(1)], 8);
    let img2 = b.add_array("img2", &[size.max(1), size.max(1)], 8);
    let out = b.add_array("out", &[steps.max(1), size.max(1), size.max(1)], 8);

    let diff = b.sub(
        b.read(img2, &[b.idx(i), b.idx(j)]),
        b.read(img1, &[b.idx(i), b.idx(j)]),
    );
    let scaled = b.mul(b.loop_index(s), diff);
    let step = b.binary(BinOp::Div, scaled, b.int(steps.max(1) as i64));
    let value = b.add(b.read(img1, &[b.idx(i), b.idx(j)]), step);
    b.store(out, &[b.idx(s), b.idx(i), b.idx(j)], value);
    b.build()
}

/// The paper's problem size: two 64 × 64 grey-scale images, 16 intermediate images.
///
/// # Errors
///
/// Never fails for these constants; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    imi(64, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 3);
        assert_eq!(kernel.nest().total_iterations(), 16 * 64 * 64);
        // img1 (single group: both reads share the subscript), img2, out.
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn source_images_need_a_full_image_of_registers() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("img1").unwrap().registers_full(), 4_096);
        assert_eq!(analysis.by_name("img2").unwrap().registers_full(), 4_096);
        assert!(!analysis.by_name("out").unwrap().has_reuse());
    }

    #[test]
    fn repeated_reads_of_img1_form_one_group() {
        let kernel = paper().unwrap();
        let table = kernel.reference_table();
        let img1 = table.find_by_name("img1").unwrap();
        assert_eq!(img1.occurrences().len(), 2);
        assert!(img1.has_read());
        assert!(!img1.has_write());
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(imi(0, 4).is_err());
        assert!(imi(4, 0).is_err());
    }
}
