//! String pattern matching kernel (PAT).
//!
//! ```c
//! for (i = 0; i < N - P; i++)
//!   for (j = 0; j < P; j++)
//!     hits[i] = hits[i] + (text[i + j] == pattern[j]);
//! ```
//!
//! The pattern is invariant with respect to the text position loop (`R = P`), while the
//! text window slides (group reuse only) and the per-position hit counter accumulates.

use srra_ir::{BinOp, IrError, Kernel, KernelBuilder};

/// Builds a pattern-matching kernel searching a `pattern_len`-character pattern in a
/// `text_len`-character string.
///
/// # Errors
///
/// Returns an [`IrError`] when the pattern does not fit the text or a length is zero.
pub fn pat(text_len: u64, pattern_len: u64) -> Result<Kernel, IrError> {
    let positions = text_len.saturating_sub(pattern_len);
    let b = KernelBuilder::new("pat");
    let i = b.add_loop("i", positions);
    let j = b.add_loop("j", pattern_len.max(1));
    let text = b.add_array("text", &[text_len.max(1)], 8);
    let pattern = b.add_array("pattern", &[pattern_len.max(1)], 8);
    let hits = b.add_array("hits", &[positions.max(1)], 16);

    let matches = b.binary(
        BinOp::CmpEq,
        b.read(text, &[b.idx_sum(i, j)]),
        b.read(pattern, &[b.idx(j)]),
    );
    let acc = b.add(b.read(hits, &[b.idx(i)]), matches);
    b.store(hits, &[b.idx(i)], acc);
    b.build()
}

/// The paper's problem size: a 16-character pattern searched in a 4,096-character
/// string.
///
/// # Errors
///
/// Never fails for these constants; the `Result` is kept for API uniformity.
pub fn paper() -> Result<Kernel, IrError> {
    pat(4_096, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_reuse::ReuseAnalysis;

    #[test]
    fn paper_size_builds() {
        let kernel = paper().unwrap();
        assert_eq!(kernel.nest().depth(), 2);
        assert_eq!(kernel.nest().trip_counts(), vec![4_080, 16]);
        assert_eq!(kernel.reference_table().len(), 3);
    }

    #[test]
    fn pattern_is_the_reuse_target() {
        let kernel = paper().unwrap();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.by_name("pattern").unwrap().registers_full(), 16);
        assert!(analysis.by_name("pattern").unwrap().has_reuse());
        // The text window slides by one character per position: a pattern-sized window
        // of registers captures its reuse.
        assert_eq!(analysis.by_name("text").unwrap().registers_full(), 16);
        assert_eq!(analysis.by_name("hits").unwrap().registers_full(), 1);
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        assert!(pat(16, 16).is_err());
        assert!(pat(8, 16).is_err());
    }
}
