//! Build a custom kernel with the `KernelBuilder` API — a separable 3x3 image blur —
//! and run the full pipeline on it, demonstrating how a downstream user would apply
//! the library to their own loop nest.
//!
//! Run with:
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use srra_bench::evaluate_compiled;
use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_ir::{Kernel, KernelBuilder};

/// A 3x3 blur over a `size x size` image: every output pixel sums a 3x3 window of the
/// input, weighted by a small coefficient kernel held in `w`.
fn blur3x3(size: u64) -> Result<Kernel, srra_ir::IrError> {
    let b = KernelBuilder::new("blur3x3");
    let i = b.add_loop("i", size - 2);
    let j = b.add_loop("j", size - 2);
    let u = b.add_loop("u", 3);
    let v = b.add_loop("v", 3);
    let img = b.add_array("img", &[size, size], 8);
    let w = b.add_array("w", &[3, 3], 8);
    let out = b.add_array("out", &[size - 2, size - 2], 16);

    let tap = b.mul(
        b.read(img, &[b.idx_sum(i, u), b.idx_sum(j, v)]),
        b.read(w, &[b.idx(u), b.idx(v)]),
    );
    let acc = b.add(b.read(out, &[b.idx(i), b.idx(j)]), tap);
    b.store(out, &[b.idx(i), b.idx(j)], acc);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One CompiledKernel context serves the reuse report and every evaluation
    // below: the analysis runs once, on first use.
    let kernel = CompiledKernel::new(blur3x3(64)?);
    println!("{}", kernel.kernel());

    println!("reference requirements:");
    for summary in kernel.analysis() {
        println!(
            "  {:<16} R = {:<5} eliminable accesses = {}",
            summary.rendered(),
            summary.registers_full(),
            summary.saved_full()
        );
    }

    println!("\nevaluations with a 24-register budget:");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12}",
        "algo", "registers", "cycles", "clock ns", "time us"
    );
    for allocator in AllocatorRegistry::paper_versions() {
        let outcome = evaluate_compiled(&kernel, allocator, 24)?;
        println!(
            "{:<8} {:>10} {:>12} {:>10.1} {:>12.1}",
            allocator.label(),
            outcome.allocation.total_registers(),
            outcome.design.total_cycles,
            outcome.design.clock_period_ns,
            outcome.design.execution_time_us
        );
    }
    Ok(())
}
