//! Design-space exploration for the FIR kernel: sweep the register budget and show how
//! each allocation algorithm turns registers into cycles, clock rate and wall-clock
//! time on the modelled XCV1000 device.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fir_design_space
//! ```

use srra_bench::evaluate_compiled;
use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_kernels::fir;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared context for all 24 (budget, strategy) evaluations: the reuse
    // analysis runs once instead of once per design point.
    let kernel = CompiledKernel::new(fir::fir(1_024, 32)?);
    println!(
        "FIR design space — {} output samples, 32 taps\n",
        kernel.kernel().nest().trip_counts()[0]
    );
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "budget", "algo", "registers", "cycles", "clock ns", "time us", "slices"
    );

    for budget in [8u64, 16, 24, 32, 48, 64, 96, 128] {
        for allocator in AllocatorRegistry::paper_versions() {
            let Ok(outcome) = evaluate_compiled(&kernel, allocator, budget) else {
                continue;
            };
            println!(
                "{:<8} {:<8} {:>10} {:>12} {:>10.1} {:>12.1} {:>8}",
                budget,
                allocator.label(),
                outcome.allocation.total_registers(),
                outcome.design.total_cycles,
                outcome.design.clock_period_ns,
                outcome.design.execution_time_us,
                outcome.design.slices
            );
        }
        println!();
    }

    println!(
        "Observation: with tight budgets CPA-RA splits registers across the taps and\n\
         the input window (the inputs of the same multiply), while FR-RA/PR-RA spend\n\
         them on one reference and stall on the other — the effect behind the paper's\n\
         Table 1 cycle-count differences."
    );
    Ok(())
}
