//! Design-space exploration example: sweep the FIR kernel over register
//! budgets, RAM latencies and two devices, cache every result on disk, and
//! print the Pareto frontier plus the best-allocator summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --example explore_pareto
//! ```
//!
//! Running it a second time answers every design point from the JSONL cache
//! (watch the hit count) and prints byte-identical tables.

use srra_core::AllocatorRegistry;
use srra_explore::{
    best_allocators, pareto_frontier, render_best_allocators, render_frontier, DesignSpace,
    Explorer, JsonlStore,
};
use srra_fpga::DeviceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = srra_kernels::fir::paper()?;
    // Resolve the allocator axis from the registry by name: any registered
    // strategy — including ones added after this example was written — can be
    // swept without touching the explore crate.
    let registry = AllocatorRegistry::global();
    let allocators: Vec<_> = ["fr", "pr", "cpa", "ks", "greedy"]
        .iter()
        .map(|name| registry.get(name).expect("built-in strategy"))
        .collect();
    let space = DesignSpace::new()
        .with_kernel(kernel)
        .with_allocators(&allocators)
        .with_budgets(&[8, 16, 32, 64, 128])
        .with_ram_latencies(&[1, 2, 4])
        .with_devices(vec![DeviceModel::xcv1000(), DeviceModel::xcv300()]);
    println!(
        "exploring {} design points of the `fir` kernel...\n",
        space.len()
    );

    let cache_path = std::env::temp_dir().join("srra-explore-example.jsonl");
    let mut store = JsonlStore::open(&cache_path)?;
    let run = Explorer::new(4).explore(&space, &mut store)?;
    println!(
        "{} cache hits, {} evaluated (cache: {})\n",
        run.cache_hits,
        run.evaluated,
        cache_path.display()
    );

    let frontier = pareto_frontier(&run.records);
    print!("{}", render_frontier("fir", &frontier));
    println!();
    print!("{}", render_best_allocators(&best_allocators(&run.records)));
    Ok(())
}
