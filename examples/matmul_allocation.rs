//! Walk through the CPA-RA machinery on a matrix-multiply kernel: build the DFG,
//! extract the critical graph, enumerate its cuts and show how the allocation evolves.
//!
//! Run with:
//!
//! ```text
//! cargo run --example matmul_allocation
//! ```

use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_dfg::find_cuts;
use srra_kernels::mat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The CompiledKernel context memoizes the DFG, the baseline critical-path
    // analysis and the reuse analysis — each is computed once below and shared
    // with the three allocator runs.
    let kernel = CompiledKernel::new(mat::mat(16)?);
    println!("{}", kernel.kernel());

    // The data-flow graph of one iteration of the loop body.
    let dfg = kernel.dfg();
    println!(
        "DFG: {} nodes ({} references, {} operations), {} edges",
        dfg.node_count(),
        dfg.reference_nodes().len(),
        dfg.operation_nodes().len(),
        dfg.edge_count()
    );

    // Critical graph and cuts with everything still in RAM.
    let analysis = kernel.critical_path();
    println!(
        "critical path length with all references in RAM: {} cycles",
        analysis.critical_length()
    );
    let cg = analysis.critical_graph();
    println!("critical graph nodes:");
    for &node in cg.nodes() {
        println!("  {}", dfg.node(node).label());
    }
    println!("cuts of the critical graph:");
    for cut in find_cuts(dfg, cg) {
        let labels: Vec<&str> = cut.iter().map(|&n| dfg.node(n).label()).collect();
        println!("  {{{}}}", labels.join(", "));
    }

    // Compare the allocations for a 32-register budget.
    println!("\nallocations with 32 registers:");
    for allocator in AllocatorRegistry::paper_versions() {
        let allocation = allocator.allocate(&kernel, 32)?;
        println!(
            "  {:<7} -> {}  ({} registers, {} fully / {} partially replaced)",
            allocator.label(),
            allocation.distribution(),
            allocation.total_registers(),
            allocation.fully_replaced(),
            allocation.partially_replaced()
        );
    }
    Ok(())
}
