//! Walk through the CPA-RA machinery on a matrix-multiply kernel: build the DFG,
//! extract the critical graph, enumerate its cuts and show how the allocation evolves.
//!
//! Run with:
//!
//! ```text
//! cargo run --example matmul_allocation
//! ```

use srra_core::{allocate, AllocatorKind};
use srra_dfg::{find_cuts, CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
use srra_kernels::mat;
use srra_reuse::ReuseAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = mat::mat(16)?;
    println!("{kernel}");

    // The data-flow graph of one iteration of the loop body.
    let dfg = DataFlowGraph::from_kernel(&kernel);
    println!(
        "DFG: {} nodes ({} references, {} operations), {} edges",
        dfg.node_count(),
        dfg.reference_nodes().len(),
        dfg.operation_nodes().len(),
        dfg.edge_count()
    );

    // Critical graph and cuts with everything still in RAM.
    let analysis =
        CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
    println!(
        "critical path length with all references in RAM: {} cycles",
        analysis.critical_length()
    );
    let cg = analysis.critical_graph();
    println!("critical graph nodes:");
    for &node in cg.nodes() {
        println!("  {}", dfg.node(node).label());
    }
    println!("cuts of the critical graph:");
    for cut in find_cuts(&dfg, cg) {
        let labels: Vec<&str> = cut.iter().map(|&n| dfg.node(n).label()).collect();
        println!("  {{{}}}", labels.join(", "));
    }

    // Compare the allocations for a 32-register budget.
    let reuse = ReuseAnalysis::of(&kernel);
    println!("\nallocations with 32 registers:");
    for kind in AllocatorKind::paper_versions() {
        let allocation = allocate(kind, &kernel, &reuse, 32)?;
        println!(
            "  {:<7} -> {}  ({} registers, {} fully / {} partially replaced)",
            kind.label(),
            allocation.distribution(),
            allocation.total_registers(),
            allocation.fully_replaced(),
            allocation.partially_replaced()
        );
    }
    Ok(())
}
