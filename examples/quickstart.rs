//! Quickstart: allocate registers for the paper's running example and inspect the
//! result of each algorithm.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use srra_core::{allocate, memory_cost, AllocatorKind, MemoryCostModel};
use srra_ir::examples::paper_example;
use srra_reuse::ReuseAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build (or load) a kernel.  `paper_example()` is the loop nest of Figure 1:
    //    d[i][k] = a[k] * b[k][j];  e[i][j][k] = c[j] * d[i][k];
    let kernel = paper_example();
    println!("{kernel}");

    // 2. Run the data-reuse analysis: how many registers does each reference need and
    //    how many memory accesses would a full replacement eliminate?
    let analysis = ReuseAnalysis::of(&kernel);
    println!("reference          R_full   saved    gamma");
    for summary in &analysis {
        println!(
            "{:<18} {:>6} {:>7} {:>8.1}",
            summary.rendered(),
            summary.registers_full(),
            summary.saved_full(),
            summary.benefit_cost()
        );
    }

    // 3. Allocate a 64-register budget with each algorithm and compare the memory
    //    cycles of the resulting designs.
    let model = MemoryCostModel::default();
    println!("\nalgorithm  registers  distribution                          Tmem/outer");
    for kind in [
        AllocatorKind::FullReuse,
        AllocatorKind::PartialReuse,
        AllocatorKind::CriticalPathAware,
        AllocatorKind::KnapsackOptimal,
    ] {
        let allocation = allocate(kind, &kernel, &analysis, 64)?;
        let cost = memory_cost(&kernel, &analysis, &allocation, &model);
        println!(
            "{:<10} {:>9}  {:<36} {:>10}",
            kind.label(),
            allocation.total_registers(),
            allocation.distribution(),
            cost.memory_cycles_per_outer_iteration
        );
    }

    Ok(())
}
