//! Quickstart: allocate registers for the paper's running example and inspect the
//! result of each algorithm.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use srra_core::{memory_cost, AllocatorRegistry, CompiledKernel, MemoryCostModel};
use srra_ir::examples::paper_example;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build (or load) a kernel and wrap it in a CompiledKernel: the shared
    //    analysis context every pipeline stage draws from.  `paper_example()`
    //    is the loop nest of Figure 1:
    //    d[i][k] = a[k] * b[k][j];  e[i][j][k] = c[j] * d[i][k];
    let kernel = CompiledKernel::new(paper_example());
    println!("{}", kernel.kernel());

    // 2. Inspect the data-reuse analysis: how many registers does each reference
    //    need and how many memory accesses would a full replacement eliminate?
    //    The analysis is computed here, once; every allocator below reuses it.
    println!("reference          R_full   saved    gamma");
    for summary in kernel.analysis() {
        println!(
            "{:<18} {:>6} {:>7} {:>8.1}",
            summary.rendered(),
            summary.registers_full(),
            summary.saved_full(),
            summary.benefit_cost()
        );
    }

    // 3. Allocate a 64-register budget with every registered strategy and compare
    //    the memory cycles of the resulting designs.  The registry supplies the
    //    strategies — including ones, like `greedy`, that no pipeline layer
    //    names explicitly.
    let model = MemoryCostModel::default();
    println!("\nalgorithm  registers  distribution                          Tmem/outer");
    for allocator in AllocatorRegistry::global().iter() {
        let allocation = allocator.allocate(&kernel, 64)?;
        let cost = memory_cost(kernel.kernel(), kernel.analysis(), &allocation, &model);
        println!(
            "{:<10} {:>9}  {:<36} {:>10}",
            allocator.label(),
            allocation.total_registers(),
            allocation.distribution(),
            cost.memory_cycles_per_outer_iteration
        );
    }

    Ok(())
}
