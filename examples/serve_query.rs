//! Query-serving example: start the sharded result server in-process, fan a
//! batch of design-point queries at it from concurrent client threads, and
//! watch the shards fill up.
//!
//! Run with:
//!
//! ```text
//! cargo run --example serve_query
//! ```
//!
//! The same workload arrives twice: the first pass evaluates every miss
//! (exactly once, even though four clients race for the same points), the
//! second pass is answered entirely from the shard files.  In production the
//! server side of this example is `srra serve --cache-dir <dir>` and the
//! client side is `srra query --addr <host:port> ...`.

use srra_serve::{Client, QueryPoint, Server, ServerConfig};

fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat", "pat"] {
        for algo in ["fr", "cpa"] {
            for budget in [16, 32, 64] {
                points.push(QueryPoint::new(kernel, algo, budget));
            }
        }
    }
    points
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache_dir = std::env::temp_dir().join("srra-serve-example");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let server = Server::bind(&ServerConfig::ephemeral(&cache_dir))?;
    let addr = server.local_addr().to_string();
    println!(
        "serving the explore cache on {addr} ({})\n",
        cache_dir.display()
    );
    let handle = std::thread::spawn(move || server.run());

    let points = workload();
    for pass in ["cold", "warm"] {
        let (hits, evaluated) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let addr = addr.clone();
                    let points = points.clone();
                    scope.spawn(move || {
                        let reply = Client::new(addr)
                            .explore(&points)
                            .expect("explore succeeds");
                        (reply.hits, reply.evaluated)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0, 0), |(h, e), (hits, evaluated)| {
                    (h + hits, e + evaluated)
                })
        });
        println!(
            "{pass} pass: 4 clients x {} points -> {hits} served from shards, {evaluated} evaluated",
            points.len()
        );
    }

    // Third pass, the hot-path shape: ONE keep-alive connection, the whole
    // workload batched into a single `mget` line — no per-request connection
    // setup, one syscall each way.
    let client = Client::new(addr);
    let canonicals: Vec<String> = points
        .iter()
        .map(|point| srra_serve::canonical_for(point).expect("workload resolves"))
        .collect();
    let mut connection = client.connect()?;
    let got = connection.mget(&canonicals)?;
    println!(
        "keep-alive pass: one mget line answered {}/{} points from the shards",
        got.iter().filter(|record| record.is_some()).count(),
        points.len()
    );
    drop(connection); // Close the keep-alive socket before asking for shutdown.

    let stats = client.stats()?;
    println!(
        "\nserver stats: {} requests, {} hits, {} evaluated; shard records {:?}",
        stats.requests, stats.hits, stats.evaluated, stats.shard_records
    );
    for op in ["explore", "mget"] {
        let entry = stats.op(op).expect("per-op stats are reported");
        println!(
            "  op {:<8} count {:>3}  p50 {:>4} us  p99 {:>4} us",
            entry.op, entry.count, entry.p50_us, entry.p99_us
        );
    }
    assert_eq!(
        stats.evaluated as usize,
        points.len(),
        "each distinct point is evaluated exactly once across all clients and passes"
    );

    client.shutdown()?;
    handle.join().expect("server thread")?;
    println!("server shut down cleanly");
    Ok(())
}
