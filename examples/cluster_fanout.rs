//! Cluster example: three serve nodes behind a consistent-hash ring, with
//! replication and a mid-run node kill.
//!
//! Run with:
//!
//! ```text
//! cargo run --example cluster_fanout
//! ```
//!
//! The workload explores a small grid through a `ClusterClient` with
//! `--replicas 2` semantics: every point is evaluated exactly once on its
//! owning node and its record teed to the next ring successor.  One node is
//! then shut down mid-run — every read still answers, byte-identically, from
//! the surviving replicas.  In production the node side of this example is
//! `srra serve --cache-dir <dir>` per host and the client side is
//! `srra cluster --nodes a:p,b:p,c:p --replicas 2 ...`.

use srra_cluster::{ClusterClient, ClusterConfig};
use srra_serve::{Client, PointOutcome, QueryPoint, Server, ServerConfig};

fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat", "pat"] {
        for algo in ["fr", "cpa"] {
            for budget in [16, 32, 64] {
                points.push(QueryPoint::new(kernel, algo, budget));
            }
        }
    }
    points
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("srra-cluster-example");
    let _ = std::fs::remove_dir_all(&base);

    // Three independent serve nodes, each over its own shard directory.
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for index in 0..3 {
        let server = Server::bind(&ServerConfig::ephemeral(base.join(format!("node-{index}"))))?;
        addrs.push(server.local_addr().to_string());
        handles.push(std::thread::spawn(move || server.run()));
    }
    println!("cluster nodes: {}", addrs.join(", "));

    let mut cluster = ClusterClient::connect(&ClusterConfig::new(addrs.clone()).with_replicas(2))?;
    let points = workload();
    for point in &points {
        println!(
            "  {} -> {}",
            srra_serve::canonical_for(point).expect("workload resolves"),
            cluster
                .ring()
                .node_for_canonical(&srra_serve::canonical_for(point).expect("workload resolves"))
        );
    }

    // Cold pass: every point evaluated exactly once, records teed to the
    // replica successor.
    let cold = cluster.explore(&points)?;
    println!(
        "\ncold: {} points, {} evaluated, {} hits, {} records replicated",
        cold.outcomes.len(),
        cold.evaluated,
        cold.hits,
        cold.replicated
    );

    // Kill one node mid-run.
    let victim = addrs[0].clone();
    Client::new(victim.clone()).shutdown()?;
    handles.remove(0).join().expect("server thread")?;
    println!("killed node {victim}");

    // Every read still answers from the surviving replicas, byte-identically.
    let canonicals: Vec<String> = points
        .iter()
        .map(|point| srra_serve::canonical_for(point).expect("workload resolves"))
        .collect();
    let records = cluster.mget(&canonicals)?;
    let answered = records.iter().filter(|record| record.is_some()).count();
    println!(
        "after failover: {answered}/{} reads answered",
        records.len()
    );
    assert_eq!(
        answered,
        records.len(),
        "replication keeps every key readable"
    );
    for (outcome, record) in cold.outcomes.iter().zip(&records) {
        let PointOutcome::Answered {
            record: original, ..
        } = outcome
        else {
            panic!("cold outcomes are all answers");
        };
        assert_eq!(
            Some(original),
            record.as_ref(),
            "failover reads are byte-identical"
        );
    }

    let stats = cluster.stats();
    println!(
        "\nper-node stats ({} up of {}):",
        stats.nodes_up(),
        stats.nodes.len()
    );
    for node in &stats.nodes {
        match &node.stats {
            Some(server) => println!(
                "  {:<21} up    {} requests, {} evaluated, {} records",
                node.addr,
                server.requests,
                server.evaluated,
                server.records()
            ),
            None => println!("  {:<21} down", node.addr),
        }
    }

    cluster.shutdown_all();
    for handle in handles {
        handle.join().expect("server thread")?;
    }
    std::fs::remove_dir_all(&base)?;
    Ok(())
}
