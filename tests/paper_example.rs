//! End-to-end integration test: the paper's running example (Figure 1 / Figure 2).
//!
//! This test pins down every number the paper quotes for its worked example: the
//! register requirements, the critical-graph cut structure, the register distributions
//! produced by the three algorithms and the resulting memory-cycle counts.

use srra_bench::figure2::{figure2, FIGURE2_BUDGET};
use srra_core::{allocate, AllocatorKind};
use srra_dfg::{find_cuts, CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
use srra_ir::examples::paper_example;
use srra_reuse::ReuseAnalysis;

#[test]
fn register_requirements_match_section_3() {
    let kernel = paper_example();
    let analysis = ReuseAnalysis::of(&kernel);
    let requirement = |name: &str| analysis.by_name(name).unwrap().registers_full();
    assert_eq!(requirement("a"), 30);
    assert_eq!(requirement("b"), 600);
    assert_eq!(requirement("c"), 20);
    assert_eq!(requirement("d"), 30);
    assert_eq!(requirement("e"), 1);
}

#[test]
fn critical_graph_cuts_match_figure_2b() {
    let kernel = paper_example();
    let dfg = DataFlowGraph::from_kernel(&kernel);
    let analysis =
        CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
    let cuts = find_cuts(&dfg, analysis.critical_graph());
    let mut rendered: Vec<Vec<String>> = cuts
        .iter()
        .map(|cut| {
            let mut labels: Vec<String> = cut
                .iter()
                .map(|&n| dfg.node(n).label().to_owned())
                .collect();
            labels.sort();
            labels
        })
        .collect();
    rendered.sort();
    assert_eq!(
        rendered,
        vec![
            vec!["a[k]".to_owned(), "b[k][j]".to_owned()],
            vec!["d[i][k]".to_owned()],
            vec!["e[i][j][k]".to_owned()],
        ]
    );
}

#[test]
fn register_distributions_match_figure_2c() {
    let kernel = paper_example();
    let analysis = ReuseAnalysis::of(&kernel);
    let beta = |kind: AllocatorKind, name: &str| {
        allocate(kind, &kernel, &analysis, FIGURE2_BUDGET)
            .unwrap()
            .by_name(name)
            .unwrap()
            .beta()
    };

    // FR-RA: a and c fully replaced, everything else holds a single register.
    assert_eq!(beta(AllocatorKind::FullReuse, "a"), 30);
    assert_eq!(beta(AllocatorKind::FullReuse, "c"), 20);
    assert_eq!(beta(AllocatorKind::FullReuse, "b"), 1);
    assert_eq!(beta(AllocatorKind::FullReuse, "d"), 1);
    assert_eq!(beta(AllocatorKind::FullReuse, "e"), 1);

    // PR-RA: the 11 leftover registers flow into d.
    assert_eq!(beta(AllocatorKind::PartialReuse, "d"), 12);

    // CPA-RA: cut {d} first, then the remainder split equally across cut {a, b}.
    assert_eq!(beta(AllocatorKind::CriticalPathAware, "d"), 30);
    assert_eq!(beta(AllocatorKind::CriticalPathAware, "a"), 16);
    assert_eq!(beta(AllocatorKind::CriticalPathAware, "b"), 16);
    assert_eq!(beta(AllocatorKind::CriticalPathAware, "c"), 1);
    assert_eq!(beta(AllocatorKind::CriticalPathAware, "e"), 1);
}

#[test]
fn memory_cycles_match_figure_2c() {
    let rows = figure2();
    let tmem = |algo: &str| {
        rows.iter()
            .find(|r| r.algorithm == algo)
            .unwrap()
            .memory_cycles_per_outer_iteration
    };
    assert_eq!(tmem("FR-RA"), 1_800);
    assert_eq!(tmem("PR-RA"), 1_560);
    assert_eq!(tmem("CPA-RA"), 1_184);
}

#[test]
fn every_algorithm_respects_the_budget_and_is_deterministic() {
    let kernel = paper_example();
    let analysis = ReuseAnalysis::of(&kernel);
    for kind in AllocatorKind::all() {
        let first = allocate(kind, &kernel, &analysis, FIGURE2_BUDGET).unwrap();
        let second = allocate(kind, &kernel, &analysis, FIGURE2_BUDGET).unwrap();
        assert_eq!(first, second, "{kind:?} must be deterministic");
        if kind != AllocatorKind::NoReplacement {
            assert!(first.total_registers() <= FIGURE2_BUDGET);
        }
    }
}
