//! Property-based integration tests: allocator invariants over randomly generated
//! loop nests and budgets.
//!
//! These tests exercise the whole pipeline (IR construction, reuse analysis, DFG/cut
//! machinery, the three allocators and the cost model) on kernels the authors of the
//! individual crates never wrote by hand.

use proptest::prelude::*;
use srra_core::{allocate, memory_cost, AllocatorKind, MemoryCostModel};
use srra_ir::{Kernel, KernelBuilder};
use srra_reuse::ReuseAnalysis;

/// Builds a two-statement, three-deep loop nest parameterised by its bounds and by
/// which loops each reference uses — a generalisation of the paper's running example.
fn build_kernel(ni: u64, nj: u64, nk: u64, use_j_in_a: bool, use_i_in_c: bool) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);

    let a_dims: Vec<u64> = if use_j_in_a { vec![nk, nj] } else { vec![nk] };
    let a = b.add_array("a", &a_dims, 16);
    let arr_b = b.add_array("b", &[nk, nj], 16);
    let c_dims: Vec<u64> = if use_i_in_c { vec![ni, nj] } else { vec![nj] };
    let c = b.add_array("c", &c_dims, 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);

    let a_subs = if use_j_in_a {
        vec![b.idx(k), b.idx(j)]
    } else {
        vec![b.idx(k)]
    };
    let c_subs = if use_i_in_c {
        vec![b.idx(i), b.idx(j)]
    } else {
        vec![b.idx(j)]
    };

    let op1 = b.mul(b.read(a, &a_subs), b.read(arr_b, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    let op2 = b.mul(b.read(c, &c_subs), b.read(d, &[b.idx(i), b.idx(k)]));
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);
    b.build().expect("generated kernel is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocations_respect_the_budget_and_reference_requirements(
        ni in 1u64..6,
        nj in 2u64..24,
        nk in 2u64..24,
        use_j_in_a in any::<bool>(),
        use_i_in_c in any::<bool>(),
        budget in 5u64..200,
    ) {
        let kernel = build_kernel(ni, nj, nk, use_j_in_a, use_i_in_c);
        let analysis = ReuseAnalysis::of(&kernel);
        for kind in [
            AllocatorKind::FullReuse,
            AllocatorKind::PartialReuse,
            AllocatorKind::CriticalPathAware,
            AllocatorKind::KnapsackOptimal,
        ] {
            let Ok(allocation) = allocate(kind, &kernel, &analysis, budget) else {
                // Only acceptable failure: the budget cannot cover one register per
                // reference.
                prop_assert!(budget < analysis.len() as u64);
                continue;
            };
            prop_assert!(allocation.total_registers() <= budget);
            for decision in &allocation {
                let summary = analysis.get(decision.ref_id()).unwrap();
                prop_assert!(decision.beta() >= 1);
                prop_assert!(decision.beta() <= summary.registers_full().max(1));
            }
        }
    }

    #[test]
    fn partial_reuse_never_saves_fewer_accesses_than_full_reuse(
        ni in 1u64..5,
        nj in 2u64..20,
        nk in 2u64..20,
        budget in 6u64..120,
    ) {
        let kernel = build_kernel(ni, nj, nk, false, false);
        let analysis = ReuseAnalysis::of(&kernel);
        let model = MemoryCostModel::default();
        let Ok(fr) = allocate(AllocatorKind::FullReuse, &kernel, &analysis, budget) else {
            return Ok(());
        };
        let pr = allocate(AllocatorKind::PartialReuse, &kernel, &analysis, budget).unwrap();
        let fr_cost = memory_cost(&kernel, &analysis, &fr, &model);
        let pr_cost = memory_cost(&kernel, &analysis, &pr, &model);
        prop_assert!(pr_cost.remaining_accesses <= fr_cost.remaining_accesses);
        prop_assert!(pr_cost.memory_cycles <= fr_cost.memory_cycles);
    }

    #[test]
    fn cpa_ra_never_loses_to_the_greedy_variants_on_memory_cycles(
        ni in 1u64..5,
        nj in 2u64..20,
        nk in 2u64..20,
        use_j_in_a in any::<bool>(),
        budget in 6u64..120,
    ) {
        let kernel = build_kernel(ni, nj, nk, use_j_in_a, false);
        let analysis = ReuseAnalysis::of(&kernel);
        let model = MemoryCostModel::default();
        let Ok(fr) = allocate(AllocatorKind::FullReuse, &kernel, &analysis, budget) else {
            return Ok(());
        };
        let pr = allocate(AllocatorKind::PartialReuse, &kernel, &analysis, budget).unwrap();
        let cpa = allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, budget).unwrap();
        let fr_cycles = memory_cost(&kernel, &analysis, &fr, &model).memory_cycles;
        let pr_cycles = memory_cost(&kernel, &analysis, &pr, &model).memory_cycles;
        let cpa_cycles = memory_cost(&kernel, &analysis, &cpa, &model).memory_cycles;
        prop_assert!(cpa_cycles <= fr_cycles);
        prop_assert!(cpa_cycles <= pr_cycles);
    }

    #[test]
    fn knapsack_dominates_full_reuse_on_eliminated_accesses(
        ni in 1u64..5,
        nj in 2u64..20,
        nk in 2u64..20,
        budget in 6u64..120,
    ) {
        let kernel = build_kernel(ni, nj, nk, false, false);
        let analysis = ReuseAnalysis::of(&kernel);
        let model = MemoryCostModel::default();
        let Ok(fr) = allocate(AllocatorKind::FullReuse, &kernel, &analysis, budget) else {
            return Ok(());
        };
        let ks = allocate(AllocatorKind::KnapsackOptimal, &kernel, &analysis, budget).unwrap();
        let fr_eliminated = memory_cost(&kernel, &analysis, &fr, &model).eliminated_accesses;
        let ks_eliminated = memory_cost(&kernel, &analysis, &ks, &model).eliminated_accesses;
        prop_assert!(ks_eliminated >= fr_eliminated);
    }
}
