//! Integration test: the Table 1 reproduction keeps the qualitative shape the paper
//! reports, across all six kernels.

use srra_bench::table1::{summarize, table1};

#[test]
fn table1_has_all_kernels_and_versions() {
    let rows = table1();
    assert_eq!(rows.len(), 18);
    for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
        for version in ["v1", "v2", "v3"] {
            assert!(
                rows.iter()
                    .any(|r| r.kernel == kernel && r.version == version),
                "missing {kernel} {version}"
            );
        }
    }
}

#[test]
fn budgets_are_respected_and_registers_grow_with_the_version() {
    let rows = table1();
    for row in &rows {
        assert!(
            row.total_registers <= 32,
            "{} {} uses {} registers",
            row.kernel,
            row.version,
            row.total_registers
        );
        assert!(row.cycles > 0);
        assert!(row.clock_period_ns > 0.0);
        assert!(row.slices > 0);
    }
    for kernel in ["fir", "dec_fir", "mat", "imi", "pat", "bic"] {
        let reg = |version: &str| {
            rows.iter()
                .find(|r| r.kernel == kernel && r.version == version)
                .unwrap()
                .total_registers
        };
        assert!(reg("v2") >= reg("v1"), "{kernel}");
    }
}

#[test]
fn cpa_ra_wins_on_cycles_where_the_paper_says_it_should() {
    let rows = table1();
    let summary = summarize(&rows);
    // The paper's aggregate claims, as orderings rather than absolute numbers:
    // v3 improves cycles on average, and by more than v2 does.
    assert!(summary.avg_cycle_gain_v3_pct > 0.0);
    assert!(summary.avg_cycle_gain_v3_pct >= summary.avg_cycle_gain_v2_pct);
    // v3 beats v2 on cycles on average.
    assert!(summary.avg_v3_over_v2_cycle_gain_pct >= 0.0);
    // The v3 clock degrades, but mildly (the paper reports about 7%).
    assert!(summary.avg_clock_loss_v3_pct >= 0.0);
    assert!(summary.avg_clock_loss_v3_pct < 20.0);
}

#[test]
fn window_kernels_show_the_largest_cpa_advantage() {
    // FIR, Dec-FIR and PAT are the kernels where the inputs of one operation live in
    // different arrays; co-allocating them is exactly what CPA-RA does and what the
    // greedy variants cannot.
    let rows = table1();
    let gain = |kernel: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.version == "v3")
            .unwrap()
            .cycle_reduction_pct
    };
    assert!(gain("fir") > 5.0, "fir gain {}", gain("fir"));
    assert!(gain("dec_fir") > 2.0, "dec_fir gain {}", gain("dec_fir"));
    assert!(gain("pat") > 5.0, "pat gain {}", gain("pat"));
}

#[test]
fn designs_fit_the_xcv1000_device() {
    let rows = table1();
    for row in &rows {
        assert!(
            row.occupancy_pct < 100.0,
            "{} {} occupies {:.1}% of the device",
            row.kernel,
            row.version,
            row.occupancy_pct
        );
        assert!(row.block_rams <= 160, "unreasonable BlockRAM count");
    }
}
