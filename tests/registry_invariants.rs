//! Cross-allocator registry invariants over the built-in kernel suite.
//!
//! These tests guard the trait-registry refactor: every registered strategy,
//! on every built-in kernel, must respect the register budget, and the five
//! strategies predating the registry must produce bit-identical allocations
//! through the legacy `allocate(AllocatorKind, …)` dispatch and through their
//! registry entries.

use proptest::prelude::*;
use srra_core::{allocate, AllocatorKind, AllocatorRegistry, CompiledKernel};
use srra_ir::examples::paper_example;
use srra_kernels::paper_suite;

/// The paper's six kernels plus the running example, as shared contexts.
fn builtin_kernels() -> Vec<CompiledKernel> {
    let mut kernels = vec![CompiledKernel::new(paper_example())];
    kernels.extend(paper_suite().iter().map(|spec| spec.compiled()));
    kernels
}

#[test]
fn every_registry_allocator_respects_the_budget_on_every_builtin_kernel() {
    for kernel in builtin_kernels() {
        let references = kernel.analysis().len() as u64;
        for allocator in AllocatorRegistry::global().iter() {
            for budget in [references, 16, 32, 64, 256, 1024] {
                let Ok(allocation) = allocator.allocate(&kernel, budget) else {
                    assert!(
                        budget < references,
                        "{} on {} rejected feasible budget {budget}",
                        allocator.name(),
                        kernel.name()
                    );
                    continue;
                };
                if allocator.kind() != Some(AllocatorKind::NoReplacement) {
                    assert!(
                        allocation.total_registers() <= budget,
                        "{} on {} exceeds budget {budget}: {}",
                        allocator.name(),
                        kernel.name(),
                        allocation.total_registers()
                    );
                }
                for decision in &allocation {
                    let summary = kernel.analysis().get(decision.ref_id()).unwrap();
                    assert!(decision.beta() <= summary.registers_full().max(1));
                }
            }
        }
    }
}

#[test]
fn registry_entries_agree_with_the_legacy_kind_dispatch() {
    for kernel in builtin_kernels() {
        let analysis = kernel.analysis();
        for kind in AllocatorKind::all() {
            let entry = srra_core::AllocatorRef::from(kind);
            for budget in [8u64, 32, 64, 700] {
                let legacy = allocate(kind, kernel.kernel(), analysis, budget);
                let registry = entry.allocate(&kernel, budget);
                match (legacy, registry) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a,
                        b,
                        "{} on {} at budget {budget} disagrees",
                        entry.name(),
                        kernel.name()
                    ),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!(
                        "{} on {} at budget {budget}: legacy {a:?} vs registry {b:?}",
                        entry.name(),
                        kernel.name()
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised budgets over the generalised paper example: the registry
    /// dispatch and the legacy dispatch stay in lockstep even off the paper's
    /// fixed evaluation points.
    #[test]
    fn dispatch_agreement_holds_for_random_budgets(
        ni in 1u64..6,
        nj in 2u64..24,
        nk in 2u64..24,
        budget in 5u64..300,
    ) {
        let kernel = srra_ir::examples::paper_example_with(ni, nj, nk);
        let compiled = CompiledKernel::new(kernel.clone());
        let analysis = srra_reuse::ReuseAnalysis::of(&kernel);
        for kind in AllocatorKind::all() {
            let legacy = allocate(kind, &kernel, &analysis, budget);
            let registry = srra_core::AllocatorRef::from(kind).allocate(&compiled, budget);
            prop_assert_eq!(legacy.is_ok(), registry.is_ok(), "kind {:?}", kind);
            if let (Ok(a), Ok(b)) = (legacy, registry) {
                prop_assert_eq!(a, b, "kind {:?}", kind);
            }
        }
    }
}
