//! Cross-validation: the element-accurate execution simulator (`srra-fpga::simulate`)
//! against the analytic access model (`srra-core::memory_cost`) on scaled-down kernels.

use srra_core::{allocate, memory_cost, AllocatorKind, MemoryCostModel, ReplacementMode};
use srra_fpga::simulate;
use srra_ir::Kernel;
use srra_kernels::{dec_fir, fir, mat, pat};
use srra_reuse::ReuseAnalysis;

const SIM_LIMIT: u64 = 2_000_000;

fn scaled_kernels() -> Vec<Kernel> {
    vec![
        fir::fir(256, 16).unwrap(),
        dec_fir::dec_fir(256, 16, 4).unwrap(),
        mat::mat(12).unwrap(),
        pat::pat(256, 8).unwrap(),
        srra_ir::examples::paper_example_with(2, 12, 18),
    ]
}

#[test]
fn fully_replaced_references_only_perform_their_essential_transfers() {
    for kernel in scaled_kernels() {
        let analysis = ReuseAnalysis::of(&kernel);
        // A budget large enough to fully replace everything with reuse.
        let budget = analysis.total_registers_full() + analysis.len() as u64;
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, budget).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, SIM_LIMIT);
        for decision in &allocation {
            let summary = analysis.get(decision.ref_id()).unwrap();
            if decision.mode() == ReplacementMode::Full {
                assert_eq!(
                    sim.of(decision.ref_id()).ram_accesses(),
                    summary.access_counts().essential,
                    "{}: {}",
                    kernel.name(),
                    summary.rendered()
                );
            }
        }
    }
}

#[test]
fn unreplaced_references_match_their_total_access_counts() {
    for kernel in scaled_kernels() {
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::NoReplacement, &kernel, &analysis, 0).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, SIM_LIMIT);
        for summary in &analysis {
            assert_eq!(
                sim.of(summary.ref_id()).ram_accesses(),
                summary.access_counts().total,
                "{}: {}",
                kernel.name(),
                summary.rendered()
            );
        }
    }
}

#[test]
fn analytic_remaining_accesses_track_the_simulation_for_the_paper_versions() {
    // The analytic model uses an idealised proportional model for partial replacement.
    // For pinned (loop-invariant) working sets the simulation agrees closely; for
    // partially replaced *sliding windows* the proportional model is optimistic (a
    // window smaller than its reuse distance captures almost nothing), so there the
    // simulation is only required to stay within the [essential, total] bounds.
    let model = MemoryCostModel::default();
    for kernel in scaled_kernels() {
        let analysis = ReuseAnalysis::of(&kernel);
        let budget = 24u64.max(analysis.len() as u64 + 1);
        let mut simulated = Vec::new();
        for kind in AllocatorKind::paper_versions() {
            let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
            let predicted = memory_cost(&kernel, &analysis, &allocation, &model).remaining_accesses;
            let sim = simulate(&kernel, &analysis, &allocation, SIM_LIMIT);
            let observed = sim.total_ram_accesses();
            // Global sanity: never below the prediction by more than 15%, never above
            // the untransformed total.
            let total: u64 = analysis.iter().map(|s| s.access_counts().total).sum();
            assert!(observed <= total, "{} {:?}", kernel.name(), kind);
            assert!(
                observed as f64 >= predicted as f64 * 0.85 - 8.0,
                "{} {:?}: predicted {predicted}, simulated {observed}",
                kernel.name(),
                kind
            );
            // Per-reference: every count stays within [essential, total], and pinned
            // partial working sets agree with the proportional prediction within 15%.
            for decision in &allocation {
                let summary = analysis.get(decision.ref_id()).unwrap();
                let per_ref = sim.of(decision.ref_id()).ram_accesses();
                assert!(per_ref <= summary.access_counts().total);
                if decision.mode() == ReplacementMode::Partial
                    && !srra_reuse::invariant_loops(
                        kernel.reference_table().get(decision.ref_id()).unwrap(),
                        kernel.nest(),
                    )
                    .is_empty()
                {
                    let predicted_ref =
                        srra_reuse::remaining_accesses(summary, decision.beta()) as f64;
                    assert!(
                        (per_ref as f64 - predicted_ref).abs()
                            <= (predicted_ref * 0.15).max(analysis.len() as f64 + 8.0),
                        "{} {:?} {}: predicted {predicted_ref}, simulated {per_ref}",
                        kernel.name(),
                        kind,
                        summary.rendered()
                    );
                }
            }
            simulated.push(observed);
        }
        // PR-RA (index 1) never performs more RAM accesses than FR-RA (index 0).
        assert!(simulated[1] <= simulated[0], "{}", kernel.name());
    }
}
