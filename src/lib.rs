//! Facade crate re-exporting the `srra` workspace members.
//!
//! The `srra` workspace is a reproduction of *"A Register Allocation Algorithm in the
//! Presence of Scalar Replacement for Fine-Grain Configurable Architectures"*
//! (Baradaran & Diniz, DATE 2005).
//!
//! Most users should depend on the individual crates:
//!
//! * [`srra_ir`] — loop-nest / affine-reference intermediate representation,
//! * [`srra_reuse`] — data-reuse analysis and register-requirement model,
//! * [`srra_dfg`] — data-flow graph, critical graph and cut enumeration,
//! * [`srra_core`] — the allocation strategies (FR-RA / PR-RA / CPA-RA and
//!   more) behind the open [`srra_core::AllocatorRegistry`], plus the
//!   [`srra_core::CompiledKernel`] memoized analysis context,
//! * [`srra_fpga`] — the FPGA execution, clock and area models,
//! * [`srra_kernels`] — the six evaluation kernels,
//! * [`srra_explore`] — parallel design-space exploration, result caching and
//!   Pareto frontiers,
//! * [`srra_obs`] — process-wide metrics registry (counters, gauges, latency
//!   histograms) and telemetry snapshots behind the serving stack,
//! * [`srra_serve`] — the sharded result store and the TCP query-serving
//!   front end over the exploration cache,
//! * [`srra_cluster`] — consistent-hash routing, replication and failover
//!   across multiple serve nodes,
//! * [`srra_bench`] — the Table 1 / Figure 2 reproduction harness.
//!
//! # Example — evaluate one design point
//!
//! ```
//! use srra::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = CompiledKernel::new(srra_kernels::fir::fir(64, 8)?);
//! let cpa = AllocatorRegistry::global().get("cpa").expect("built-in strategy");
//! let outcome = srra_bench::evaluate_compiled(&kernel, cpa, 32)?;
//! assert!(outcome.design.total_cycles > 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — sweep a design space and extract the Pareto frontier
//!
//! Three lines take a kernel from specification to the set of non-dominated
//! (cycles × slices × registers) design points; swap
//! [`srra_explore::MemoryStore`] for a [`srra_explore::JsonlStore`] to persist
//! results so repeated sweeps never re-evaluate a point:
//!
//! ```
//! use srra::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DesignSpace::for_kernels([srra_kernels::fir::fir(64, 8)?])
//!     .with_budgets(&[8, 16, 32, 64]);
//! let run = Explorer::new(4).explore(&space, &mut MemoryStore::new())?;
//! let frontier = srra_explore::pareto_frontier(&run.records);
//! assert!(!frontier.is_empty());
//! # Ok(())
//! # }
//! ```

pub use srra_bench;
pub use srra_cluster;
pub use srra_core;
pub use srra_dfg;
pub use srra_explore;
pub use srra_fpga;
pub use srra_ir;
pub use srra_kernels;
pub use srra_obs;
pub use srra_reuse;
pub use srra_serve;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use srra_cluster::{ClusterClient, ClusterConfig, Ring};
    pub use srra_core::{
        Allocator, AllocatorKind, AllocatorRef, AllocatorRegistry, CompiledKernel,
        RegisterAllocation,
    };
    pub use srra_dfg::DataFlowGraph;
    pub use srra_explore::{DesignSpace, Exploration, Explorer, JsonlStore, MemoryStore};
    pub use srra_fpga::{DeviceModel, HardwareDesign};
    pub use srra_ir::{ArrayRef, Kernel, LoopNest};
    pub use srra_obs::{MetricsSnapshot, Registry};
    pub use srra_reuse::ReuseAnalysis;
    pub use srra_serve::{Client, Connection, QueryPoint, Server, ServerConfig, ShardedStore};
}
