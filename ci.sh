#!/usr/bin/env bash
# CI gate for the srra workspace:
#   1. formatting          (cargo fmt --check)
#   2. lints as errors     (cargo clippy --workspace -- -D warnings)
#   3. doc warnings as errors (RUSTDOCFLAGS="-D warnings" cargo doc --no-deps)
#   4. tier-1 verification (cargo build --release && cargo test -q)
#   5. serve smoke test    (srra serve + srra query against a live socket,
#                           incl. one pipelined keep-alive connection and
#                           the same ops over the binary wire codec)
#   6. cluster smoke test  (two srra serve nodes + consistent-hash routed
#                           mget/explore through srra cluster, JSON and
#                           binary; both nodes must receive traffic)
#   7. metrics smoke test  (traffic-driven telemetry scrape: JSON snapshot
#                           with non-zero counters + well-formed Prometheus
#                           exposition, folded into the steps above)
#   8. trace smoke test    (traced workloads against both steps: span
#                           waterfalls fetched after the fact via the trace
#                           op, slow-query pinning, histogram exemplars and
#                           the merged cluster-wide waterfall)
#   9. time-series smoke   (sampled nodes: the series op answers stored
#                           snapshots and windowed deltas, `cluster top
#                           --once` renders every node plus the fleet row,
#                           and a deliberately impossible SLO rule breaches)
#  10. self-healing smoke  (replicated cluster survives kill -9, an empty
#                           reborn node is healed by read-repair and
#                           converged by `cluster repair`; idle-connection
#                           reaping under --idle-timeout-secs)
#
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps'
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release --workspace"
# --workspace: a plain root build compiles only the facade package and never
# produces target/release/srra, which the smoke tests below drive.
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> serve smoke test"
SRRA="target/release/srra"
SMOKE_DIR="$(mktemp -d)"
cleanup_smoke() {
  [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "${NODE_A_PID:-}" ] && kill "$NODE_A_PID" 2>/dev/null || true
  [ -n "${NODE_B_PID:-}" ] && kill "$NODE_B_PID" 2>/dev/null || true
  [ -n "${NODE_C_PID:-}" ] && kill "$NODE_C_PID" 2>/dev/null || true
  [ -n "${NODE_D_PID:-}" ] && kill "$NODE_D_PID" 2>/dev/null || true
  [ -n "${NODE_E_PID:-}" ] && kill "$NODE_E_PID" 2>/dev/null || true
  [ -n "${NODE_F_PID:-}" ] && kill "$NODE_F_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
# --slow-query-us 1 makes every evaluating request "slow", so the traced
# explore below must land in the flight recorder's pinned set.
"$SRRA" serve --addr 127.0.0.1:0 --shards 4 --cache-dir "$SMOKE_DIR/cache" \
  --slow-query-us 1 \
  > "$SMOKE_DIR/serve.out" 2> "$SMOKE_DIR/serve.err" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/serve.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve smoke: server never announced its address"; exit 1; }
# One miss (empty shards), one evaluation, then one hit of the same point.
"$SRRA" query --addr "$ADDR" get fir cpa 32 | grep -q '"found":false'
"$SRRA" query --addr "$ADDR" explore --kernel fir --algos cpa --budgets 32 \
  | grep -q '"evaluated":1'
"$SRRA" query --addr "$ADDR" get fir cpa 32 | grep -q '"found":true'
"$SRRA" query --addr "$ADDR" stats | grep -q '"records":1'
# Pipelined keep-alive: several ops written over ONE connection before any
# reply is read (`query pipe`), replies strictly in request order.
FIR_CANON='kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560'
PIPE_OUT="$SMOKE_DIR/pipe.out"
{
  echo '{"op":"get","canonical":"'"$FIR_CANON"'"}'
  echo '{"op":"mget","canonicals":["'"$FIR_CANON"'","kernel=nope"]}'
  echo '{"op":"mexplore","points":[{"kernel":"mat","algo":"fr","budget":16},{"kernel":"nope","algo":"fr","budget":16}]}'
  echo '{"op":"stats"}'
} | "$SRRA" query --addr "$ADDR" pipe > "$PIPE_OUT"
[ "$(wc -l < "$PIPE_OUT")" -eq 4 ] || { echo "serve smoke: pipe reply count"; exit 1; }
sed -n '1p' "$PIPE_OUT" | grep -q '"found":true'
sed -n '2p' "$PIPE_OUT" | grep -q '"got":\[{.*,null\]'
sed -n '3p' "$PIPE_OUT" | grep -q '"outcomes":\[{"hit":false,.*{"error":"unknown kernel'
# The new per-op latency counters are present and non-zero for the ops above.
sed -n '4p' "$PIPE_OUT" | grep -q '"ops":{'
sed -n '4p' "$PIPE_OUT" | grep -Eq '"get":\{"count":[1-9]'
sed -n '4p' "$PIPE_OUT" | grep -Eq '"mget":\{"count":[1-9]'
sed -n '4p' "$PIPE_OUT" | grep -Eq '"mexplore":\{"count":[1-9]'
sed -n '4p' "$PIPE_OUT" | grep -Eq '"explore":\{"count":[1-9]'
# Binary wire codec: the same ops over `--binary` print identical JSON
# output (the server detects the codec per frame on the shared listener).
"$SRRA" query --addr "$ADDR" --binary get fir cpa 32 | grep -q '"found":true'
BPIPE_OUT="$SMOKE_DIR/pipe-binary.out"
{
  echo '{"op":"get","canonical":"'"$FIR_CANON"'"}'
  echo '{"op":"mget","canonicals":["'"$FIR_CANON"'","kernel=nope"]}'
} | "$SRRA" query --addr "$ADDR" --binary pipe > "$BPIPE_OUT"
[ "$(wc -l < "$BPIPE_OUT")" -eq 2 ] || { echo "serve smoke: binary pipe reply count"; exit 1; }
sed -n '1p' "$BPIPE_OUT" | grep -q '"found":true'
sed -n '2p' "$BPIPE_OUT" | grep -q '"got":\[{.*,null\]'
cmp -s <(sed -n '1,2p' "$PIPE_OUT") "$BPIPE_OUT" \
  || { echo "serve smoke: binary and JSON replies differ"; exit 1; }
# Trace smoke: stamp a trace id on a cold explore, then fetch its span
# waterfall after the fact through the trace op.  The root spans the whole
# request; the engine stages and the render show up as indented children.
"$SRRA" query --addr "$ADDR" --trace ci.trace.1 explore \
  --kernel imi --algos cpa --budgets 8 \
  | grep -q '"evaluated":1' || { echo "trace smoke: traced explore"; exit 1; }
TRACE_OUT="$SMOKE_DIR/trace.out"
"$SRRA" query --addr "$ADDR" trace ci.trace.1 > "$TRACE_OUT"
grep -Eq '^trace ci\.trace\.1: [1-9][0-9]* span' "$TRACE_OUT" \
  || { echo "trace smoke: no spans retained"; exit 1; }
grep -q '^explore +' "$TRACE_OUT" \
  || { echo "trace smoke: root span missing"; exit 1; }
grep -q '^  engine.allocation +' "$TRACE_OUT" \
  || { echo "trace smoke: engine stage child missing"; exit 1; }
grep -q '^  render +' "$TRACE_OUT" \
  || { echo "trace smoke: render child missing"; exit 1; }
# The forced-slow traced request was logged with its top stage spans...
grep -q 'slow-query.*trace=ci.trace.1.*spans=' "$SMOKE_DIR/serve.err" \
  || { echo "trace smoke: slow-query log missing span note"; exit 1; }
# ...and an unknown id answers an empty waterfall, not an error.
"$SRRA" query --addr "$ADDR" trace ci.never.sent \
  | grep -q 'no spans retained' || { echo "trace smoke: unknown id"; exit 1; }
# Metrics smoke: after the mixed get/mget/mexplore traffic above, the JSON
# snapshot reports non-zero serve counters and the exploration-stage globals.
METRICS_OUT="$SMOKE_DIR/metrics.json"
"$SRRA" query --addr "$ADDR" metrics > "$METRICS_OUT"
grep -Eq '"serve_requests_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: no requests counted"; exit 1; }
grep -Eq '"serve_op_get_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: get ops not counted"; exit 1; }
grep -Eq '"serve_evaluated_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: evaluations not counted"; exit 1; }
grep -Eq '"explore_evaluations_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: engine stage counters missing"; exit 1; }
grep -Eq '"store_shard_reads_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: shard counters missing"; exit 1; }
grep -q '"histograms":{' "$METRICS_OUT" \
  || { echo "metrics smoke: histograms missing"; exit 1; }
# Both codec counters saw traffic (JSON queries above, binary get + pipe).
grep -Eq '"serve_codec_binary_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: binary codec counter is zero"; exit 1; }
grep -Eq '"serve_codec_json_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: json codec counter is zero"; exit 1; }
# The startup re-hydration histogram is registered and scraped.
grep -q '"store_rehydrate_us"' "$METRICS_OUT" \
  || { echo "metrics smoke: rehydrate histogram missing"; exit 1; }
# The slow traced explore above was pinned into the flight recorder.
grep -Eq '"serve_pinned_traces_total":[1-9]' "$METRICS_OUT" \
  || { echo "metrics smoke: slow trace was not pinned"; exit 1; }
# The Prometheus exposition is well-formed: typed families, cumulative
# buckets ending at +Inf, and a non-zero requests sample.
PROM_OUT="$SMOKE_DIR/metrics.prom"
"$SRRA" query --addr "$ADDR" metrics --prom > "$PROM_OUT"
grep -q '^# TYPE serve_requests_total counter' "$PROM_OUT" \
  || { echo "metrics smoke: exposition TYPE line"; exit 1; }
grep -q '^# TYPE serve_op_get_latency_us histogram' "$PROM_OUT" \
  || { echo "metrics smoke: exposition histogram family"; exit 1; }
grep -q 'serve_op_get_latency_us_bucket{le="+Inf"}' "$PROM_OUT" \
  || { echo "metrics smoke: exposition +Inf bucket"; exit 1; }
grep -Eq '^serve_requests_total [1-9]' "$PROM_OUT" \
  || { echo "metrics smoke: exposition sample is zero"; exit 1; }
grep -q '^# HELP serve_requests_total ' "$PROM_OUT" \
  || { echo "metrics smoke: exposition HELP line"; exit 1; }
# The traced request left its id on the latency bucket it landed in.
grep -q 'trace_id="ci.trace.1"' "$PROM_OUT" \
  || { echo "metrics smoke: exemplar missing"; exit 1; }
# Graceful shutdown: ack on the wire, clean exit, summary line, lock released.
"$SRRA" query --addr "$ADDR" shutdown | grep -q '"shutting_down":true'
wait "$SERVE_PID"
SERVE_PID=""
grep -q "srra-serve stopped" "$SMOKE_DIR/serve.out"
[ ! -e "$SMOKE_DIR/cache/LOCK" ] || { echo "serve smoke: LOCK left behind"; exit 1; }
# The evaluated records landed in the binary segment shard files: the
# canonical strings sit as raw UTF-8 bytes inside the record payloads, so a
# binary-tolerant grep finds them.  (grep reads the files itself: a
# `cat | grep -q` pipeline can trip pipefail when grep exits on the first
# match while cat is still writing the remaining shards.)
grep -aq 'kernel=fir;' "$SMOKE_DIR"/cache/shard-*.seg \
  || { echo "serve smoke: shards are empty"; exit 1; }
grep -aq 'kernel=mat;' "$SMOKE_DIR"/cache/shard-*.seg \
  || { echo "serve smoke: mexplore record missing"; exit 1; }

echo "==> cluster smoke test"
# Two independent serve nodes; the router splits the key space between them.
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-a" \
  > "$SMOKE_DIR/node-a.out" 2> "$SMOKE_DIR/node-a.err" &
NODE_A_PID=$!
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-b" \
  > "$SMOKE_DIR/node-b.out" 2> "$SMOKE_DIR/node-b.err" &
NODE_B_PID=$!
ADDR_A=""
ADDR_B=""
for _ in $(seq 1 100); do
  ADDR_A="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-a.out")"
  ADDR_B="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-b.out")"
  [ -n "$ADDR_A" ] && [ -n "$ADDR_B" ] && break
  sleep 0.1
done
[ -n "$ADDR_A" ] && [ -n "$ADDR_B" ] \
  || { echo "cluster smoke: a node never announced its address"; exit 1; }
NODES="$ADDR_A,$ADDR_B"
CLUSTER_AXES="--kernel fir,mat,pat --algos fr,pr,cpa --budgets 8,16,32,64"
# Routed explore: 36 points, every one evaluated exactly once across the
# cluster (the ring sends each canonical to one owner).  36 keys also make
# the per-node traffic check below safe: even at the worst tested balance
# bound (a 2/3 key share), all keys landing on one node has probability
# ~(2/3)^36 < 1e-6.
"$SRRA" cluster --nodes "$NODES" explore $CLUSTER_AXES 2>/dev/null \
  | grep -q '"evaluated":36' || { echo "cluster smoke: explore"; exit 1; }
# Routed mget over the same grid: all 36 answered, none null.
"$SRRA" cluster --nodes "$NODES" mget $CLUSTER_AXES > "$SMOKE_DIR/cluster-mget.out"
grep -q '"got":\[{' "$SMOKE_DIR/cluster-mget.out" \
  || { echo "cluster smoke: mget shape"; exit 1; }
! grep -q 'null' "$SMOKE_DIR/cluster-mget.out" \
  || { echo "cluster smoke: mget returned a miss"; exit 1; }
# Both nodes received traffic: every node line reports evaluations.
"$SRRA" cluster --nodes "$NODES" stats > "$SMOKE_DIR/cluster-stats.out"
[ "$(grep -c '"up":true' "$SMOKE_DIR/cluster-stats.out")" -eq 2 ] \
  || { echo "cluster smoke: not all nodes up"; exit 1; }
! grep '"addr"' "$SMOKE_DIR/cluster-stats.out" | grep -q '"evaluated":0,' \
  || { echo "cluster smoke: a node received no explore traffic"; exit 1; }
grep -q '"nodes_up":2' "$SMOKE_DIR/cluster-stats.out" \
  || { echo "cluster smoke: totals line"; exit 1; }
grep -q '"total_evaluated":36' "$SMOKE_DIR/cluster-stats.out" \
  || { echo "cluster smoke: evaluated total"; exit 1; }
# Liveness probe answers for both nodes.
[ "$("$SRRA" cluster --nodes "$NODES" ping | grep -c '"up":true')" -eq 2 ] \
  || { echo "cluster smoke: ping"; exit 1; }
# Binary cluster round-trip: the same warm mget over `--binary` prints
# byte-identical output.
"$SRRA" cluster --nodes "$NODES" --binary mget $CLUSTER_AXES \
  > "$SMOKE_DIR/cluster-mget-binary.out"
cmp -s "$SMOKE_DIR/cluster-mget.out" "$SMOKE_DIR/cluster-mget-binary.out" \
  || { echo "cluster smoke: binary mget output differs"; exit 1; }
# Cluster-wide metrics scrape: both nodes answer, and the merged snapshot
# carries the routed traffic (36 evaluations summed across the nodes).
"$SRRA" cluster --nodes "$NODES" metrics > "$SMOKE_DIR/cluster-metrics.out"
[ "$(grep -c '"scraped":true' "$SMOKE_DIR/cluster-metrics.out")" -eq 2 ] \
  || { echo "cluster smoke: metrics scrape"; exit 1; }
grep -Eq '"serve_evaluated_total":3[6-9]' "$SMOKE_DIR/cluster-metrics.out" \
  || { echo "cluster smoke: merged evaluation counter"; exit 1; }
grep -Eq '"client_connects_total":[1-9]' "$SMOKE_DIR/cluster-metrics.out" \
  || { echo "cluster smoke: client-side counters missing"; exit 1; }
# Both codec counters are non-zero across the fleet: the JSON ops above and
# the binary mget round-trip each left their mark.
grep -Eq '"serve_codec_binary_total":[1-9]' "$SMOKE_DIR/cluster-metrics.out" \
  || { echo "cluster smoke: binary codec counter is zero"; exit 1; }
grep -Eq '"serve_codec_json_total":[1-9]' "$SMOKE_DIR/cluster-metrics.out" \
  || { echo "cluster smoke: json codec counter is zero"; exit 1; }
# Cluster trace smoke: a traced cold explore fans out under ONE trace id;
# afterwards `cluster trace` scrapes both flight recorders and merges the
# per-node subtrees into a single waterfall with engine-stage children.
"$SRRA" cluster --nodes "$NODES" --trace ci.cluster.t1 explore \
  --kernel imi,bic --algos cpa,fr --budgets 8,16,32,64 2>/dev/null \
  | grep -q '"evaluated":16' || { echo "cluster smoke: traced explore"; exit 1; }
CLUSTER_TRACE_OUT="$SMOKE_DIR/cluster-trace.out"
"$SRRA" cluster --nodes "$NODES" trace ci.cluster.t1 > "$CLUSTER_TRACE_OUT"
[ "$(grep -c '"scraped":true' "$CLUSTER_TRACE_OUT")" -eq 2 ] \
  || { echo "cluster smoke: trace scrape"; exit 1; }
grep -Eq '^trace ci\.cluster\.t1: [1-9][0-9]* span' "$CLUSTER_TRACE_OUT" \
  || { echo "cluster smoke: merged waterfall empty"; exit 1; }
grep -q '^mexplore +' "$CLUSTER_TRACE_OUT" \
  || { echo "cluster smoke: routed root span missing"; exit 1; }
grep -q '^  engine.allocation +' "$CLUSTER_TRACE_OUT" \
  || { echo "cluster smoke: engine stage child missing"; exit 1; }
# Graceful shutdown of both nodes.
"$SRRA" query --addr "$ADDR_A" shutdown | grep -q '"shutting_down":true'
"$SRRA" query --addr "$ADDR_B" shutdown | grep -q '"shutting_down":true'
wait "$NODE_A_PID"
NODE_A_PID=""
wait "$NODE_B_PID"
NODE_B_PID=""

echo "==> time-series smoke test"
# Two sampled nodes carrying a deliberately impossible SLO: no explore
# finishes under 1us, so the rule must breach once traffic lands.
TIGHT_SLO="serve_op_explore_latency_us p99 < 1us over 30s"
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-e" \
  --sample-interval-ms 50 --slo "$TIGHT_SLO" \
  > "$SMOKE_DIR/node-e.out" 2> "$SMOKE_DIR/node-e.err" &
NODE_E_PID=$!
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-f" \
  --sample-interval-ms 50 --slo "$TIGHT_SLO" \
  > "$SMOKE_DIR/node-f.out" 2> "$SMOKE_DIR/node-f.err" &
NODE_F_PID=$!
ADDR_E=""
ADDR_F=""
for _ in $(seq 1 100); do
  ADDR_E="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-e.out")"
  ADDR_F="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-f.out")"
  [ -n "$ADDR_E" ] && [ -n "$ADDR_F" ] && break
  sleep 0.1
done
[ -n "$ADDR_E" ] && [ -n "$ADDR_F" ] \
  || { echo "time-series smoke: a node never announced its address"; exit 1; }
SAMPLED_NODES="$ADDR_E,$ADDR_F"
# One direct cold explore per node breaches the SLO deterministically on
# both (routed cluster traffic alone could leave a node explore-free);
# the routed pass on top of it feeds the fleet-wide request rates.
"$SRRA" query --addr "$ADDR_E" explore --kernel fir --algos cpa --budgets 32 \
  | grep -q '"evaluated":1' || { echo "time-series smoke: node-e explore"; exit 1; }
"$SRRA" query --addr "$ADDR_F" explore --kernel mat --algos fr --budgets 16 \
  | grep -q '"evaluated":1' || { echo "time-series smoke: node-f explore"; exit 1; }
"$SRRA" cluster --nodes "$SAMPLED_NODES" explore \
  --kernel fir,mat,pat --algos fr,cpa --budgets 8,16,32 2>/dev/null \
  | grep -Eq '"evaluated":1[678]' || { echo "time-series smoke: routed explore"; exit 1; }
# Give the 50ms sampler a few ticks to capture the traffic above.
sleep 0.3
# Sample mode: at least two timestamped snapshots come back.
SERIES_OUT="$SMOKE_DIR/series.out"
"$SRRA" query --addr "$ADDR_E" series --last 16 > "$SERIES_OUT"
[ "$(grep -o '"at_us":' "$SERIES_OUT" | wc -l)" -ge 2 ] \
  || { echo "time-series smoke: fewer than two samples"; exit 1; }
# Window mode: the delta over the trailing window carries the traffic
# above as per-window counter increments, i.e. a non-zero request rate.
"$SRRA" query --addr "$ADDR_E" series --window-us 30000000 > "$SMOKE_DIR/series-delta.out"
grep -Eq '"serve_requests_total":[1-9]' "$SMOKE_DIR/series-delta.out" \
  || { echo "time-series smoke: windowed request rate is zero"; exit 1; }
# The fleet dashboard's single-frame mode renders one row per node plus
# the merged fleet row, with the impossible SLO showing as in breach.
TOP_OUT="$SMOKE_DIR/cluster-top.out"
"$SRRA" cluster --nodes "$SAMPLED_NODES" top --once > "$TOP_OUT" 2>/dev/null
grep -q "$ADDR_E" "$TOP_OUT" || { echo "time-series smoke: node-e row missing"; exit 1; }
grep -q "$ADDR_F" "$TOP_OUT" || { echo "time-series smoke: node-f row missing"; exit 1; }
grep -q 'fleet (2/2 up)' "$TOP_OUT" \
  || { echo "time-series smoke: fleet row missing"; exit 1; }
grep -q 'BREACH' "$TOP_OUT" \
  || { echo "time-series smoke: breaching SLO not rendered"; exit 1; }
# The breach moved the counter and logged its one transition line.
"$SRRA" query --addr "$ADDR_E" metrics \
  | grep -Eq '"obs_slo_breaches_total":[1-9]' \
  || { echo "time-series smoke: breach counter did not move"; exit 1; }
grep -q 'srra-obs slo-breach: rule=' "$SMOKE_DIR/node-e.err" \
  || { echo "time-series smoke: breach transition line missing"; exit 1; }
# Graceful shutdown of both sampled nodes.
"$SRRA" query --addr "$ADDR_E" shutdown | grep -q '"shutting_down":true'
"$SRRA" query --addr "$ADDR_F" shutdown | grep -q '"shutting_down":true'
wait "$NODE_E_PID"
NODE_E_PID=""
wait "$NODE_F_PID"
NODE_F_PID=""

echo "==> self-healing smoke test"
# A replicated two-node cluster survives a kill -9, heals the reborn node's
# empty disk through read-repair, and converges fully under `cluster repair`.
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-c" \
  > "$SMOKE_DIR/node-c.out" 2> "$SMOKE_DIR/node-c.err" &
NODE_C_PID=$!
"$SRRA" serve --addr 127.0.0.1:0 --shards 2 --cache-dir "$SMOKE_DIR/node-d" \
  > "$SMOKE_DIR/node-d.out" 2> "$SMOKE_DIR/node-d.err" &
NODE_D_PID=$!
ADDR_C=""
ADDR_D=""
for _ in $(seq 1 100); do
  ADDR_C="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-c.out")"
  ADDR_D="$(sed -n 's/^srra-serve listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/node-d.out")"
  [ -n "$ADDR_C" ] && [ -n "$ADDR_D" ] && break
  sleep 0.1
done
[ -n "$ADDR_C" ] && [ -n "$ADDR_D" ] \
  || { echo "self-healing smoke: a node never announced its address"; exit 1; }
HEAL_NODES="$ADDR_C,$ADDR_D"
HEAL_AXES="--kernel fir,mat --algos fr,pr,cpa --budgets 8,16,32,64"
# Replicated cold explore: 24 points evaluated once each, every record teed
# to the other node.
"$SRRA" cluster --nodes "$HEAL_NODES" --replicas 2 --timeout-ms 2000 \
  explore $HEAL_AXES 2>/dev/null \
  | grep -q '"evaluated":24' || { echo "self-healing smoke: cold explore"; exit 1; }
# kill -9 node D: no graceful shutdown, no flushing, LOCK left behind.
# (disown first so bash does not print an async "Killed" job notice.)
disown "$NODE_D_PID" 2>/dev/null || true
kill -9 "$NODE_D_PID"
NODE_D_PID=""
# Reads still answer every key from the survivor's replica copies.
"$SRRA" cluster --nodes "$HEAL_NODES" --replicas 2 --timeout-ms 1000 \
  mget $HEAL_AXES > "$SMOKE_DIR/heal-mget-down.out"
! grep -q 'null' "$SMOKE_DIR/heal-mget-down.out" \
  || { echo "self-healing smoke: reads lost records with a node down"; exit 1; }
# Node D comes back on the SAME port with an EMPTY cache dir (the kill -9
# left the old dir's LOCK behind — a crashed disk is simulated by pointing
# the reborn node at a fresh one).
"$SRRA" serve --addr "$ADDR_D" --shards 2 --cache-dir "$SMOKE_DIR/node-d-reborn" \
  --idle-timeout-secs 1 \
  > "$SMOKE_DIR/node-d-reborn.out" 2> "$SMOKE_DIR/node-d-reborn.err" &
NODE_D_PID=$!
for _ in $(seq 1 100); do
  grep -q "srra-serve listening" "$SMOKE_DIR/node-d-reborn.out" && break
  sleep 0.1
done
grep -q "srra-serve listening" "$SMOKE_DIR/node-d-reborn.out" \
  || { echo "self-healing smoke: reborn node never bound its old port"; exit 1; }
# A replicated read pass heals: misses on the empty node are answered by
# the survivor and teed back (read-repair), so nothing is null...
"$SRRA" cluster --nodes "$HEAL_NODES" --replicas 2 --timeout-ms 2000 \
  mget $HEAL_AXES > "$SMOKE_DIR/heal-mget-reborn.out"
! grep -q 'null' "$SMOKE_DIR/heal-mget-reborn.out" \
  || { echo "self-healing smoke: reads lost records against the empty node"; exit 1; }
# ...and the reborn node physically received put traffic and records again.
"$SRRA" query --addr "$ADDR_D" metrics > "$SMOKE_DIR/heal-reborn-metrics.out"
grep -Eq '"serve_op_put_total":[1-9]' "$SMOKE_DIR/heal-reborn-metrics.out" \
  || { echo "self-healing smoke: no read-repair puts reached the reborn node"; exit 1; }
"$SRRA" query --addr "$ADDR_D" stats | grep -Eq '"records":[1-9]' \
  || { echo "self-healing smoke: reborn node still empty after read-repair"; exit 1; }
# Anti-entropy repair copies the records read-repair did not touch (the
# reborn node's replica share); a second pass proves convergence from the
# digests alone.
"$SRRA" cluster --nodes "$HEAL_NODES" --replicas 2 repair \
  > "$SMOKE_DIR/heal-repair-1.out"
grep -Eq '"records_copied":[1-9]' "$SMOKE_DIR/heal-repair-1.out" \
  || { echo "self-healing smoke: repair copied nothing"; exit 1; }
"$SRRA" cluster --nodes "$HEAL_NODES" --replicas 2 repair \
  | grep -q '"digests_equal":true' \
  || { echo "self-healing smoke: cluster did not converge after repair"; exit 1; }
# The idle deadline reaps a connection that goes silent: hold a raw socket
# open past --idle-timeout-secs and watch the counter move.
exec 9<>"/dev/tcp/127.0.0.1/${ADDR_D##*:}" \
  || { echo "self-healing smoke: raw idle connection failed"; exit 1; }
sleep 1.6
exec 9<&- 9>&-
"$SRRA" query --addr "$ADDR_D" metrics \
  | grep -Eq '"serve_idle_reaped_total":[1-9]' \
  || { echo "self-healing smoke: idle connection was not reaped"; exit 1; }
# Graceful shutdown of both nodes.
"$SRRA" query --addr "$ADDR_C" shutdown | grep -q '"shutting_down":true'
"$SRRA" query --addr "$ADDR_D" shutdown | grep -q '"shutting_down":true'
wait "$NODE_C_PID"
NODE_C_PID=""
wait "$NODE_D_PID"
NODE_D_PID=""

echo "ci.sh: all checks passed"
