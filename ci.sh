#!/usr/bin/env bash
# CI gate for the srra workspace:
#   1. formatting          (cargo fmt --check)
#   2. lints as errors     (cargo clippy --workspace -- -D warnings)
#   3. doc warnings as errors (RUSTDOCFLAGS="-D warnings" cargo doc --no-deps)
#   4. tier-1 verification (cargo build --release && cargo test -q)
#
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps'
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "ci.sh: all checks passed"
